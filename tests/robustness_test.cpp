// Robustness sweeps: election under arbitrary port renamings, best-path
// tie-breaking, stretch cut positions, and metering consistency.

#include <gtest/gtest.h>

#include "election/harness.hpp"
#include "families/hairy.hpp"
#include "portgraph/builders.hpp"
#include "views/paths.hpp"
#include "views/profile.hpp"

namespace anole {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

// Port numbering is part of the model: renaming ports yields a different
// (but equally valid) anonymous network. Election must succeed on every
// renaming; the election index may legitimately change.
class PortShuffle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PortShuffle, ElectionSurvivesAnyPortRenaming) {
  PortGraph base = portgraph::random_connected(16, 12, 5);
  PortGraph g = portgraph::shuffle_ports(base, GetParam());
  g.validate();
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  ASSERT_TRUE(p.feasible);  // random dense graphs stay asymmetric
  election::ElectionRun run = election::run_min_time(g);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_EQ(run.metrics.rounds, p.election_index);
}

INSTANTIATE_TEST_SUITE_P(Renamings, PortShuffle,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BestPaths, TieBreaksLexicographically) {
  // A 4-cycle with asymmetric ports reaches the antipodal node via two
  // shortest paths; best_paths must pick the lexicographically smaller
  // port sequence.
  //     0 -p0/p1- 1
  //     |         |
  //     3 ------- 2 — 4 (pendant making node 2's degree unique)
  PortGraph g(5);
  g.add_edge(0, 0, 1, 0);
  g.add_edge(1, 1, 2, 0);
  g.add_edge(2, 1, 3, 0);
  g.add_edge(3, 1, 0, 1);
  g.add_edge(2, 2, 4, 0);
  g.validate();
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 2);
  auto paths = views::best_paths(repo, p.view(2, 0), 2);
  // Node 2 (the unique degree-3 node) is reached at level 2 through node 1
  // with ports (0,0,1,0) and through node 3 with ports (1,1,0,1); the
  // lexicographic winner must be the former.
  views::ViewId target = p.view(0, 2);
  ASSERT_TRUE(paths.contains(target));
  EXPECT_EQ(paths.at(target).ports, (std::vector<int>{0, 0, 1, 0}));
}

TEST(BestPaths, LevelZeroIsEmptyPath) {
  PortGraph g = portgraph::path(3);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 2);
  auto paths = views::best_paths(repo, p.view(2, 1), 0);
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths.at(p.view(2, 1)).ports.empty());
}

TEST(Hairy, StretchFromEveryCutPosition) {
  families::HairyRing h = families::hairy_ring({1, 0, 2, 0});
  auto assigned_degree = [](const PortGraph& g, NodeId v) {
    int d = 0;
    for (const auto& he : g.neighbors(v))
      if (he.neighbor >= 0) ++d;
    return d;
  };
  for (std::size_t cut = 0; cut < 4; ++cut) {
    families::Stretch s = families::gamma_stretch(h, cut, 3);
    EXPECT_EQ(s.layout.ring_of_copy.size(), 3u);
    // Copy 0 position 0 copies ring[cut]; at the stretch boundary it keeps
    // its clockwise ring edge and its star, with port 1 left free.
    NodeId first = s.layout.ring_of_copy[0][0];
    EXPECT_EQ(assigned_degree(s.graph, first),
              1 + h.star_sizes[cut]);
    // Interior copies are full replicas: both ring edges present.
    NodeId mid = s.layout.ring_of_copy[1][0];
    EXPECT_EQ(assigned_degree(s.graph, mid), 2 + h.star_sizes[cut]);
  }
}

TEST(Engine, MeteringDoesNotChangeOutcome) {
  PortGraph g = portgraph::random_connected(12, 8, 3);
  election::ElectionRun a = election::run_min_time(g, false);
  election::ElectionRun b = election::run_min_time(g, true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.metrics.outputs, b.metrics.outputs);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.message_count, b.metrics.message_count);
  EXPECT_EQ(a.metrics.total_message_bits, 0u);
  EXPECT_GT(b.metrics.total_message_bits, 0u);
}

TEST(Verify, EmptyOutputsMeanEveryoneElectsThemselves) {
  // n >= 2 nodes all outputting the empty path elect n different leaders.
  PortGraph g = portgraph::path(4);
  std::vector<std::vector<int>> outputs(4);
  election::VerifyResult r = election::verify_election(g, outputs);
  EXPECT_FALSE(r.ok);
}

TEST(Profile, MinDepthForcesExtraLevels) {
  PortGraph g = portgraph::random_connected(10, 30, 2);  // phi likely 1
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 5);
  EXPECT_GE(p.computed_depth(), 5);
  ASSERT_TRUE(p.feasible);
  // Distinctness persists at deeper levels (refinement never merges).
  for (int t = p.election_index; t <= p.computed_depth(); ++t)
    EXPECT_EQ(p.class_counts[static_cast<std::size_t>(t)], g.n());
}

}  // namespace
}  // namespace anole
