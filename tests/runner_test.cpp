// Unit tests for the experiment-runner subsystem: the scenario registry,
// deterministic reassembly of parallel cell grids, and failure capture.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/sinks.hpp"

namespace anole {
namespace {

using runner::Row;
using runner::Value;

std::string to_json(const runner::ScenarioOutcome& outcome,
                    runner::SinkOptions options = {}) {
  std::ostringstream oss;
  runner::JsonSink(options).emit(outcome, oss);
  return oss.str();
}

TEST(Registry, ContainsEveryPaperScenario) {
  const runner::ScenarioRegistry& registry =
      runner::ScenarioRegistry::global();
  for (const char* name : {"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8",
                           "e9", "e10", "m2", "m1-views", "m1-advice", "s1",
                           "smoke"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_GE(registry.names().size(), 15u);
}

TEST(Registry, FactoriesProduceRunnableScenarios) {
  const runner::ScenarioRegistry& registry =
      runner::ScenarioRegistry::global();
  for (const std::string& name : registry.names()) {
    runner::Scenario s = registry.make(name);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(s.tables.empty()) << name;
    EXPECT_FALSE(s.cells.empty()) << name;
    for (const runner::Cell& cell : s.cells)
      EXPECT_LT(cell.table, s.tables.size()) << name << "/" << cell.label;
  }
}

TEST(Registry, UnknownScenarioThrows) {
  EXPECT_THROW(runner::ScenarioRegistry::global().make("no-such-scenario"),
               std::out_of_range);
}

TEST(Registry, DuplicateNameRejected) {
  runner::ScenarioRegistry registry;
  auto factory = [] { return runner::Scenario{}; };
  registry.add("dup", factory);
  EXPECT_THROW(registry.add("dup", factory), std::logic_error);
}

TEST(Registry, ListingMetadataComesFromTheFactory) {
  runner::ScenarioRegistry registry;
  registry.add("meta", [] {
    runner::Scenario s;
    s.name = "meta";
    s.summary = "the one true summary";
    s.reference = "Lemma 0";
    return s;
  });
  EXPECT_EQ(registry.summary("meta"), "the one true summary");
  EXPECT_EQ(registry.reference("meta"), "Lemma 0");
}

runner::Scenario staggered_scenario() {
  // Cells finish in scrambled order on purpose: later cells are faster.
  runner::Scenario s;
  s.name = "staggered";
  s.tables.push_back(
      runner::TableSpec{"T", "ordering probe", {"index", "square"}});
  for (int i = 0; i < 12; ++i)
    s.add_cell("cell/" + std::to_string(i), 0, [i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((12 - i) % 5));
      return std::vector<Row>{Row{i, i * i}};
    });
  return s;
}

TEST(ExperimentRunner, ResultsKeepDeclarationOrderUnderParallelism) {
  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{4})
          .run(staggered_scenario());
  ASSERT_EQ(outcome.cells.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(outcome.cells[static_cast<std::size_t>(i)].label,
              "cell/" + std::to_string(i));
    ASSERT_EQ(outcome.cells[static_cast<std::size_t>(i)].rows.size(), 1u);
    EXPECT_EQ(outcome.cells[static_cast<std::size_t>(i)].rows[0][0],
              Value(i));
  }
}

TEST(ExperimentRunner, OutputByteIdenticalAcrossThreadCounts) {
  runner::ScenarioOutcome one =
      runner::ExperimentRunner(runner::RunOptions{1})
          .run(staggered_scenario());
  runner::ScenarioOutcome four =
      runner::ExperimentRunner(runner::RunOptions{4})
          .run(staggered_scenario());
  EXPECT_EQ(to_json(one), to_json(four));
}

TEST(ExperimentRunner, RegisteredSmokeScenarioDeterministicAcrossThreads) {
  runner::Scenario smoke = runner::ScenarioRegistry::global().make("smoke");
  runner::ScenarioOutcome one =
      runner::ExperimentRunner(runner::RunOptions{1}).run(smoke);
  runner::ScenarioOutcome four =
      runner::ExperimentRunner(runner::RunOptions{4}).run(smoke);
  std::string json = to_json(one);
  EXPECT_EQ(json, to_json(four));
  EXPECT_NE(json.find("\"scenario\": \"smoke\""), std::string::npos);
  EXPECT_EQ(one.failures(), 0u);
}

TEST(ExperimentRunner, CapturesFailuresWithoutAborting) {
  runner::Scenario s;
  s.name = "failures";
  s.tables.push_back(runner::TableSpec{"T", "", {"a", "b"}});
  s.add_cell("ok", 0, [] { return std::vector<Row>{Row{1, 2}}; });
  s.add_cell("throws", 0, []() -> std::vector<Row> {
    throw std::runtime_error("cell exploded");
  });
  s.add_cell("bad-width", 0, [] { return std::vector<Row>{Row{1}}; });
  s.add_cell("also-ok", 0, [] { return std::vector<Row>{Row{3, 4}}; });

  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{2}).run(s);
  EXPECT_EQ(outcome.failures(), 2u);
  EXPECT_TRUE(outcome.cells[0].ok());
  EXPECT_EQ(outcome.cells[1].error, "cell exploded");
  EXPECT_NE(outcome.cells[2].error.find("row width 1"), std::string::npos);
  EXPECT_TRUE(outcome.cells[3].ok());
  // Failed cells contribute no rows but keep their slots.
  EXPECT_TRUE(outcome.cells[1].rows.empty());
}

TEST(ExperimentRunner, ZeroThreadsMeansHardwareConcurrency) {
  runner::Scenario s;
  s.name = "zero";
  s.tables.push_back(runner::TableSpec{"T", "", {"x"}});
  s.add_cell("a", 0, [] { return std::vector<Row>{Row{7}}; });
  s.add_cell("b", 0, [] { return std::vector<Row>{Row{8}}; });
  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{0}).run(s);
  EXPECT_EQ(outcome.failures(), 0u);
  ASSERT_EQ(outcome.cells.size(), 2u);
  EXPECT_EQ(outcome.cells[1].rows[0][0], Value(8));
}

}  // namespace
}  // namespace anole
