// Tests for the hardened election-index service (DESIGN.md §14):
// cooperative cancellation stopping a million-node sweep within one level
// and leaving the shared repo byte-identical for the next query,
// admission control (shed + retry hints), the degradation ladder (memo
// and snapshot-anchor rungs, every rung equal to the exact recompute),
// snapshot downgrade on corruption, and the fault-repair crossover.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "election/harness.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "service/service.hpp"
#include "sim/faults.hpp"
#include "util/cancel.hpp"
#include "views/profile.hpp"
#include "views/snapshot.hpp"
#include "views/view_repo.hpp"

namespace anole {
namespace {

namespace fs = std::filesystem;

using service::Answer;
using service::AnswerRung;
using service::AnswerStatus;
using service::PendingQuery;
using service::Query;
using service::QueryKind;
using service::Service;
using service::ServiceOptions;

/// A unique temp path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("anole-service-test-" + tag + "-" +
                std::to_string(::getpid()) + ".snap"))
                  .string()) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

/// The exact offline answer the service must agree with, recomputed from
/// scratch in a private repo.
struct Offline {
  views::ViewRepo repo;
  views::ViewProfile profile;

  explicit Offline(const portgraph::PortGraph& g) {
    views::ProfileOptions opts;
    opts.min_depth = 1;
    opts.keep_history = true;
    profile = views::compute_profile(g, repo, opts);
  }
};

// ------------------------------------------------ cancellation of sweeps

TEST(ServiceCancel, ExpiredTokenStopsMillionNodeSweepWithinOneLevel) {
  portgraph::PortGraph g = portgraph::ring(1 << 20);
  util::CancelToken dead;
  dead.cancel();
  views::ViewRepo repo;
  views::ProfileOptions opts;
  opts.min_depth = 32;  // would force a deep sweep if not cancelled
  opts.keep_history = true;
  opts.cancel = &dead;
  EXPECT_THROW((void)views::compute_profile(g, repo, opts),
               util::CancelledError);
  // The level-granularity checkpoint fires before any level-1 work: at
  // most the depth-0 interns (one class on a ring) ever reach the repo.
  EXPECT_LE(repo.size(), 4u);
}

TEST(ServiceCancel, PastDeadlineStopsSweepLikeCancel) {
  portgraph::PortGraph g = portgraph::ring(1 << 20);
  util::CancelToken late = util::CancelToken::after(std::chrono::seconds(0));
  views::ViewRepo repo;
  views::ProfileOptions opts;
  opts.min_depth = 32;
  opts.keep_history = true;
  opts.cancel = &late;
  EXPECT_THROW((void)views::compute_profile(g, repo, opts),
               util::CancelledError);
  EXPECT_LE(repo.size(), 4u);
}

TEST(ServiceCancel, CancelledSweepLeavesRepoByteIdentical) {
  portgraph::PortGraph g = portgraph::random_connected(64, 96, 5);
  // Repo 1 suffers a cancelled sweep between a shallow prefix and the
  // full run; repo 2 only ever sees the full run.
  views::ViewRepo repo1;
  views::ProfileOptions shallow;
  shallow.min_depth = 3;
  shallow.keep_history = true;
  (void)views::compute_profile(g, repo1, shallow);
  util::CancelToken dead;
  dead.cancel();
  views::ProfileOptions deep;
  deep.min_depth = 12;
  deep.keep_history = true;
  deep.cancel = &dead;
  EXPECT_THROW((void)views::compute_profile(g, repo1, deep),
               util::CancelledError);
  deep.cancel = nullptr;
  views::ViewProfile a = views::compute_profile(g, repo1, deep);
  views::ViewRepo repo2;
  views::ViewProfile b = views::compute_profile(g, repo2, deep);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.election_index, b.election_index);
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(a.last_level(), b.last_level());
  // Hash-consing makes the abort harmless: both repos hold the identical
  // record sequence, down to the serialized byte.
  TempFile f1("cancel-a"), f2("cancel-b");
  repo1.save(f1.path());
  repo2.save(f2.path());
  EXPECT_EQ(read_bytes(f1.path()), read_bytes(f2.path()));
}

TEST(ServiceCancel, TimeoutDoesNotPoisonServiceRepo) {
  portgraph::PortGraph g = portgraph::path(1024);
  ServiceOptions o;
  o.workers = 1;
  Service svc(o);
  svc.add_graph(g);
  Query slow{QueryKind::kMinTime, 0};
  slow.deadline_ms = 5.0;  // far below the full path(1024) sweep
  Answer pressed = svc.ask(slow);
  EXPECT_EQ(pressed.status, AnswerStatus::kTimeout);
  EXPECT_GT(pressed.retry_after_ms, 0.0);
  // The same query without a deadline now answers exactly, over the same
  // repo the aborted sweep partially filled.
  Answer full = svc.ask(Query{QueryKind::kMinTime, 0});
  EXPECT_EQ(full.status, AnswerStatus::kExact);
  Offline offline(g);
  EXPECT_EQ(full.feasible, offline.profile.feasible);
  EXPECT_EQ(full.phi, offline.profile.election_index);
  // Byte-identical repo: the partial interns replayed as index hits.
  TempFile fs_svc("poison-svc"), fs_off("poison-off");
  svc.repo().save(fs_svc.path());
  offline.repo.save(fs_off.path());
  EXPECT_EQ(read_bytes(fs_svc.path()), read_bytes(fs_off.path()));
}

// ----------------------------------------------------- exactness ladder

TEST(Service, ExactAnswersMatchOfflineRecompute) {
  portgraph::PortGraph feasible = portgraph::random_connected(48, 64, 9);
  portgraph::PortGraph lolli = portgraph::lollipop(8, 5);
  portgraph::PortGraph sym = portgraph::ring(24);  // infeasible
  const portgraph::PortGraph* graphs[] = {&feasible, &lolli, &sym};
  ServiceOptions o;
  o.workers = 2;
  Service svc(o);
  for (const portgraph::PortGraph* g : graphs) svc.add_graph(*g);

  for (std::size_t gi = 0; gi < 3; ++gi) {
    const portgraph::PortGraph& g = *graphs[gi];
    Offline off(g);
    Answer mt = svc.ask(Query{QueryKind::kMinTime, gi});
    EXPECT_EQ(mt.status, AnswerStatus::kExact);
    EXPECT_EQ(mt.feasible, off.profile.feasible) << "graph " << gi;
    EXPECT_EQ(mt.phi, off.profile.election_index) << "graph " << gi;

    const int cd = off.profile.computed_depth();
    for (int depth : {0, 1, 2, 1000}) {
      Query q{QueryKind::kCompare, gi};
      q.u = 0;
      q.v = static_cast<portgraph::NodeId>(g.n() - 1);
      q.depth = depth;
      Answer cmp = svc.ask(q);
      EXPECT_EQ(cmp.status, AnswerStatus::kExact);
      const int t = std::min(depth, cd);
      EXPECT_EQ(cmp.equal, off.profile.view(t, q.u) == off.profile.view(t, q.v))
          << "graph " << gi << " depth " << depth;
    }

    Query adv{QueryKind::kAdvice, gi};
    adv.u = 1;
    adv.depth = 2;
    Answer advice = svc.ask(adv);
    EXPECT_EQ(advice.status, AnswerStatus::kExact);
    if (adv.depth > off.profile.computed_depth())
      views::extend_profile(g, off.repo, off.profile, adv.depth);
    EXPECT_EQ(advice.view_bits, off.repo.serialized_size_bits(
                                    off.profile.view(adv.depth, adv.u)))
        << "graph " << gi;
  }

  // Elect on the feasible graph: the leader is the Theorem 3.1 run's.
  Offline off(feasible);
  election::ElectionContext ctx(feasible, off.repo, off.profile);
  election::ElectionRun run = election::run_min_time(ctx, false);
  ASSERT_TRUE(run.verdict.ok);
  Answer el = svc.ask(Query{QueryKind::kElect, 0});
  EXPECT_EQ(el.status, AnswerStatus::kExact);
  EXPECT_TRUE(el.feasible);
  EXPECT_EQ(el.leader, run.verdict.leader);
  EXPECT_EQ(el.advice_bits, run.advice_bits);
  ASSERT_NE(el.metrics, nullptr);
  EXPECT_EQ(el.metrics->rounds, run.metrics.rounds);
  // Second elect replays the memo: same answer, kMemo rung.
  Answer replay = svc.ask(Query{QueryKind::kElect, 0});
  EXPECT_EQ(replay.rung, AnswerRung::kMemo);
  EXPECT_EQ(replay.leader, el.leader);

  // Elect on the symmetric ring: exact "no algorithm can elect".
  Answer none = svc.ask(Query{QueryKind::kElect, 2});
  EXPECT_EQ(none.status, AnswerStatus::kExact);
  EXPECT_FALSE(none.feasible);
  EXPECT_EQ(none.leader, -1);
}

TEST(Service, ElectBudgetRespected) {
  portgraph::PortGraph g = portgraph::random_connected(48, 64, 9);
  Service svc;
  svc.add_graph(g);
  Query unlimited{QueryKind::kElect, 0};
  Answer a = svc.ask(unlimited);
  ASSERT_EQ(a.status, AnswerStatus::kExact);
  EXPECT_TRUE(a.within_budget);  // budget 0 = unlimited
  Query exact_fit = unlimited;
  exact_fit.budget_bits = a.advice_bits;
  EXPECT_TRUE(svc.ask(exact_fit).within_budget);
  if (a.advice_bits > 1) {
    Query tight = unlimited;
    tight.budget_bits = a.advice_bits - 1;
    EXPECT_FALSE(svc.ask(tight).within_budget);
  }
}

TEST(Service, MalformedQueriesFailCleanly) {
  portgraph::PortGraph g = portgraph::ring(24);
  Service svc;
  svc.add_graph(g);
  Answer unknown = svc.ask(Query{QueryKind::kMinTime, 7});
  EXPECT_EQ(unknown.status, AnswerStatus::kFailed);
  EXPECT_FALSE(unknown.error.empty());
  Query oob{QueryKind::kCompare, 0};
  oob.u = 5000;
  Answer bad = svc.ask(oob);
  EXPECT_EQ(bad.status, AnswerStatus::kFailed);
  EXPECT_FALSE(bad.error.empty());
  // The failures were counted, and the service still answers.
  EXPECT_EQ(svc.stats().totals().failed, 2u);
  EXPECT_EQ(svc.ask(Query{QueryKind::kMinTime, 0}).status,
            AnswerStatus::kExact);
}

// ---------------------------------------------------- admission control

TEST(Service, OverloadShedsWithRetryHint) {
  portgraph::PortGraph slow_graph = portgraph::path(2048);
  ServiceOptions o;
  o.max_queue = 2;
  o.workers = 1;
  Service svc(o);
  svc.add_graph(slow_graph);
  // Two slow admitted queries pin in_flight at the bound (one computing,
  // one queued behind it).
  auto b1 = svc.submit(Query{QueryKind::kMinTime, 0});
  auto b2 = svc.submit(Query{QueryKind::kMinTime, 0});
  std::vector<std::shared_ptr<PendingQuery>> shed;
  for (int i = 0; i < 5; ++i)
    shed.push_back(svc.submit(Query{QueryKind::kMinTime, 0}));
  for (const auto& h : shed) {
    // Shed synchronously: the handle is already done, with a hint.
    EXPECT_EQ(h->answer.status, AnswerStatus::kShed);
    EXPECT_GT(h->answer.retry_after_ms, 0.0);
  }
  svc.drain();
  svc.wait(*b1);
  svc.wait(*b2);
  EXPECT_EQ(b1->answer.status, AnswerStatus::kExact);
  EXPECT_EQ(b2->answer.status, AnswerStatus::kExact);
  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.totals().shed, 5u);
  EXPECT_EQ(stats.totals().enqueued, 2u);
  EXPECT_LE(stats.max_in_flight, svc.queue_bound());
  // Capacity freed: the next submit is admitted again.
  Answer retry = svc.ask(Query{QueryKind::kMinTime, 0});
  EXPECT_EQ(retry.status, AnswerStatus::kExact);
}

// --------------------------------------------------- degradation ladder

TEST(Service, PressedQueriesServedExactlyFromCachedRungs) {
  portgraph::PortGraph warm_graph = portgraph::random_connected(48, 64, 9);
  portgraph::PortGraph slow_graph = portgraph::path(2048);
  portgraph::PortGraph cold_graph = portgraph::lollipop(8, 5);
  ServiceOptions o;
  o.workers = 1;
  o.max_queue = 64;
  Service svc(o);
  svc.add_graph(warm_graph);   // 0: every rung warmed below
  svc.add_graph(slow_graph);   // 1: blocks the single worker
  svc.add_graph(cold_graph);   // 2: no rung at all
  // Warm the memo/profile rungs with unhurried exact queries.
  Answer mt = svc.ask(Query{QueryKind::kMinTime, 0});
  Answer el = svc.ask(Query{QueryKind::kElect, 0});
  Query cq{QueryKind::kCompare, 0};
  cq.u = 0;
  cq.v = 1;
  cq.depth = 1;
  Answer cmp = svc.ask(cq);
  Query aq{QueryKind::kAdvice, 0};
  aq.u = 2;
  aq.depth = 1;
  Answer adv = svc.ask(aq);
  ASSERT_EQ(mt.status, AnswerStatus::kExact);
  ASSERT_EQ(el.status, AnswerStatus::kExact);

  // Park the only worker on a long sweep, then cancel queries before a
  // worker can ever claim them: each must be answered from a rung.
  auto blocker = svc.submit(Query{QueryKind::kMinTime, 1});
  auto p_mt = svc.submit(Query{QueryKind::kMinTime, 0});
  p_mt->cancel();
  auto p_el = svc.submit(Query{QueryKind::kElect, 0});
  p_el->cancel();
  auto p_cmp = svc.submit(cq);
  p_cmp->cancel();
  auto p_adv = svc.submit(aq);
  p_adv->cancel();
  auto p_cold = svc.submit(Query{QueryKind::kMinTime, 2});
  p_cold->cancel();
  svc.drain();
  (void)blocker;

  EXPECT_EQ(p_mt->answer.status, AnswerStatus::kDegraded);
  EXPECT_EQ(p_mt->answer.rung, AnswerRung::kMemo);
  EXPECT_EQ(p_mt->answer.feasible, mt.feasible);
  EXPECT_EQ(p_mt->answer.phi, mt.phi);

  EXPECT_EQ(p_el->answer.status, AnswerStatus::kDegraded);
  EXPECT_EQ(p_el->answer.rung, AnswerRung::kMemo);
  EXPECT_EQ(p_el->answer.leader, el.leader);
  EXPECT_EQ(p_el->answer.advice_bits, el.advice_bits);
  ASSERT_NE(p_el->answer.metrics, nullptr);

  EXPECT_EQ(p_cmp->answer.status, AnswerStatus::kDegraded);
  EXPECT_EQ(p_cmp->answer.equal, cmp.equal);

  EXPECT_EQ(p_adv->answer.status, AnswerStatus::kDegraded);
  EXPECT_EQ(p_adv->answer.view_bits, adv.view_bits);

  // No rung for the cold graph: an honest timeout, never a guess.
  EXPECT_EQ(p_cold->answer.status, AnswerStatus::kTimeout);
  EXPECT_GT(p_cold->answer.retry_after_ms, 0.0);

  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.totals().degraded, 4u);
  EXPECT_EQ(stats.totals().timeout, 1u);
}

TEST(Service, AnchorRungsServeWarmStartExactly) {
  portgraph::PortGraph g = portgraph::random_connected(96, 128, 11);
  portgraph::PortGraph sym = portgraph::ring(64);  // infeasible, stabilized
  TempFile snap("anchor");
  {
    views::ViewRepo repo;
    views::ProfileOptions opts;
    opts.keep_history = false;
    views::ViewProfile p = views::compute_profile(g, repo, opts);
    views::ViewProfile ps = views::compute_profile(sym, repo, opts);
    views::SweepAnchor anchors[] = {
        views::make_anchor(g, p.last_level(), p.class_counts),
        views::make_anchor(sym, ps.last_level(), ps.class_counts)};
    views::save_snapshot(snap.path(), repo,
                         std::span<const views::SweepAnchor>(anchors, 2));
  }
  ServiceOptions o;
  o.workers = 1;
  o.snapshot_path = snap.path();
  Service svc(o);
  EXPECT_TRUE(svc.warm());
  EXPECT_EQ(svc.stats().cold_downgrades, 0u);
  svc.add_graph(g);
  svc.add_graph(sym);

  Offline off(g);
  // Min-time replays straight off the anchor — no profile sweep.
  Answer mt = svc.ask(Query{QueryKind::kMinTime, 0});
  EXPECT_EQ(mt.status, AnswerStatus::kExact);
  EXPECT_EQ(mt.rung, AnswerRung::kAnchor);
  EXPECT_EQ(mt.feasible, off.profile.feasible);
  EXPECT_EQ(mt.phi, off.profile.election_index);

  // Advice at an anchored depth truncates the stored class view.
  Query aq{QueryKind::kAdvice, 0};
  aq.u = 3;
  aq.depth = 1;
  Answer adv = svc.ask(aq);
  EXPECT_EQ(adv.status, AnswerStatus::kExact);
  EXPECT_EQ(adv.rung, AnswerRung::kAnchor);
  EXPECT_EQ(adv.view_bits,
            off.repo.serialized_size_bits(off.profile.view(1, 3)));

  // Compare at the anchor's depth is conclusive (all views distinct
  // there on a feasible graph); both verdict and rung are pinned.
  Query cq{QueryKind::kCompare, 0};
  cq.u = 0;
  cq.v = 1;
  cq.depth = off.profile.computed_depth();
  Answer cmp = svc.ask(cq);
  EXPECT_EQ(cmp.status, AnswerStatus::kExact);
  EXPECT_EQ(cmp.rung, AnswerRung::kAnchor);
  EXPECT_FALSE(cmp.equal);

  // A stabilized infeasible anchor settles elect without any compute.
  Answer none = svc.ask(Query{QueryKind::kElect, 1});
  EXPECT_EQ(none.status, AnswerStatus::kExact);
  EXPECT_EQ(none.rung, AnswerRung::kAnchor);
  EXPECT_FALSE(none.feasible);
  EXPECT_EQ(none.leader, -1);
}

TEST(Service, CorruptSnapshotDowngradesToColdNeverWrong) {
  portgraph::PortGraph g = portgraph::random_connected(96, 128, 11);
  TempFile snap("corrupt");
  {
    views::ViewRepo repo;
    views::ProfileOptions opts;
    opts.keep_history = false;
    views::ViewProfile p = views::compute_profile(g, repo, opts);
    views::SweepAnchor anchor =
        views::make_anchor(g, p.last_level(), p.class_counts);
    views::save_snapshot(snap.path(), repo,
                         std::span<const views::SweepAnchor>(&anchor, 1));
  }
  std::vector<char> bytes = read_bytes(snap.path());
  ASSERT_GE(bytes.size(), 16u);
  bytes[bytes.size() - 9] ^= 0x40;  // body corruption, past the header
  {
    std::ofstream out(snap.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::vector<std::string> log;
  ServiceOptions o;
  o.workers = 1;
  o.snapshot_path = snap.path();
  o.log = [&log](const std::string& line) { log.push_back(line); };
  Service svc(o);
  EXPECT_FALSE(svc.warm());
  EXPECT_EQ(svc.stats().cold_downgrades, 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("downgrade"), std::string::npos);
  // Cold recompute, exact answer — a broken snapshot is never a wrong one.
  svc.add_graph(g);
  Offline off(g);
  Answer mt = svc.ask(Query{QueryKind::kMinTime, 0});
  EXPECT_EQ(mt.status, AnswerStatus::kExact);
  EXPECT_EQ(mt.rung, AnswerRung::kComputed);
  EXPECT_EQ(mt.feasible, off.profile.feasible);
  EXPECT_EQ(mt.phi, off.profile.election_index);
}

TEST(Service, MissingSnapshotDowngradesToCold) {
  portgraph::PortGraph g = portgraph::lollipop(8, 5);
  std::vector<std::string> log;
  ServiceOptions o;
  o.snapshot_path = "/nonexistent/anole-service-test-missing.snap";
  o.log = [&log](const std::string& line) { log.push_back(line); };
  Service svc(o);
  EXPECT_FALSE(svc.warm());
  EXPECT_EQ(svc.stats().cold_downgrades, 1u);
  EXPECT_EQ(log.size(), 1u);
  svc.add_graph(g);
  Offline off(g);
  Answer mt = svc.ask(Query{QueryKind::kMinTime, 0});
  EXPECT_EQ(mt.status, AnswerStatus::kExact);
  EXPECT_EQ(mt.phi, off.profile.election_index);
}

// ------------------------------------------------- fault-repair crossover

TEST(Service, RepairAfterRewireMatchesFromScratchRecompute) {
  portgraph::PortGraph base = portgraph::random_connected(64, 96, 13);
  sim::FaultPlan plan = sim::FaultPlan::random(base, /*horizon=*/32,
                                               /*crashes=*/0, /*rewires=*/4,
                                               /*seed=*/7);
  sim::FaultInjector injector(base, plan);
  ServiceOptions o;
  o.workers = 1;
  Service svc(o);
  const std::size_t idx = svc.add_graph(injector.graph());

  Answer before = svc.ask(Query{QueryKind::kMinTime, idx});
  ASSERT_EQ(before.status, AnswerStatus::kExact);

  sim::FaultInjector::Applied applied = injector.apply_through(32);
  ASSERT_FALSE(applied.dirty.empty());
  views::RepairStats repair = svc.repair_graph(idx, applied.dirty);
  (void)repair;

  // Every post-repair answer must equal a from-scratch recompute on a
  // copy of the mutated graph.
  portgraph::PortGraph mutated = injector.graph();
  Offline off(mutated);
  Answer mt = svc.ask(Query{QueryKind::kMinTime, idx});
  EXPECT_EQ(mt.status, AnswerStatus::kExact);
  EXPECT_EQ(mt.feasible, off.profile.feasible);
  EXPECT_EQ(mt.phi, off.profile.election_index);
  if (off.profile.feasible) {
    election::ElectionContext ctx(mutated, off.repo, off.profile);
    election::ElectionRun run = election::run_min_time(ctx, false);
    ASSERT_TRUE(run.verdict.ok);
    Answer el = svc.ask(Query{QueryKind::kElect, idx});
    EXPECT_EQ(el.status, AnswerStatus::kExact);
    EXPECT_EQ(el.leader, run.verdict.leader);
    ASSERT_NE(el.metrics, nullptr);
    election::SafetyResult safety = election::verify_safety_under_faults(
        injector.graph(), el.metrics->outputs, el.metrics->decision_round);
    EXPECT_TRUE(safety.ok) << safety.error;
  }

  // Dropping everything and recomputing cold agrees too.
  svc.invalidate_graph(idx);
  Answer cold = svc.ask(Query{QueryKind::kMinTime, idx});
  EXPECT_EQ(cold.status, AnswerStatus::kExact);
  EXPECT_EQ(cold.feasible, mt.feasible);
  EXPECT_EQ(cold.phi, mt.phi);
}

}  // namespace
}  // namespace anole
