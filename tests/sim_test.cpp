// Tests for the LOCAL-model engine and the COM (full-information) protocol:
// after r rounds every node's state is exactly B^r(v) (the paper's claim
// about Algorithm 1), metrics are sane, and timeouts are reported.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "portgraph/builders.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::sim {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;
using views::ViewId;

// Test program: runs COM for `target` rounds, then outputs an empty path
// and records the view it saw at each round count.
class RecordingProgram final : public FullInfoProgram {
 public:
  explicit RecordingProgram(int target) : target_(target) {}

  [[nodiscard]] bool has_output() const override {
    return rounds_seen_ >= target_;
  }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

  const std::vector<ViewId>& history() const { return history_; }

 protected:
  void on_view(int rounds) override {
    rounds_seen_ = rounds;
    history_.push_back(view());
  }

 private:
  int target_;
  int rounds_seen_ = 0;
  std::vector<ViewId> history_;
};

TEST(Engine, ComAcquiresExactViews) {
  // The fundamental fidelity property: after r rounds of COM, node v holds
  // precisely B^r(v) as computed by the offline refinement.
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}}) {
    PortGraph g = portgraph::random_connected(15, 10, seed);
    views::ViewRepo repo;
    const int depth = 5;
    views::ViewProfile profile = views::compute_profile(g, repo, depth);

    std::vector<std::unique_ptr<NodeProgram>> programs;
    std::vector<RecordingProgram*> raw;
    for (std::size_t v = 0; v < g.n(); ++v) {
      auto p = std::make_unique<RecordingProgram>(depth);
      raw.push_back(p.get());
      programs.push_back(std::move(p));
    }
    Engine engine(g, repo);
    RunMetrics metrics = engine.run(programs, depth + 1);
    EXPECT_FALSE(metrics.timed_out);
    EXPECT_EQ(metrics.rounds, depth);
    for (std::size_t v = 0; v < g.n(); ++v) {
      ASSERT_EQ(raw[v]->history().size(), static_cast<std::size_t>(depth) + 1);
      for (int t = 0; t <= depth; ++t)
        EXPECT_EQ(raw[v]->history()[static_cast<std::size_t>(t)],
                  profile.view(t, static_cast<NodeId>(v)))
            << "node " << v << " round " << t;
    }
  }
}

TEST(Engine, DecisionRoundsRecorded) {
  PortGraph g = portgraph::path(4);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(2));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10);
  for (int r : metrics.decision_round) EXPECT_EQ(r, 2);
  EXPECT_EQ(metrics.rounds, 2);
}

TEST(Engine, ImmediateDecisionTakesZeroRounds) {
  PortGraph g = portgraph::path(3);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(0));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10);
  EXPECT_EQ(metrics.rounds, 0);
  for (int r : metrics.decision_round) EXPECT_EQ(r, 0);
}

TEST(Engine, TimeoutReported) {
  PortGraph g = portgraph::path(3);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(100));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 5);
  EXPECT_TRUE(metrics.timed_out);
  EXPECT_EQ(metrics.rounds, 5);
}

TEST(Engine, MessageCountMatchesModel) {
  // Each round every node sends one message per incident edge: 2m per
  // round in total.
  PortGraph g = portgraph::ring(6);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(3));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10);
  EXPECT_EQ(metrics.message_count, 3u * 2u * g.m());
}

TEST(Engine, MessageBitsGrowWithRounds) {
  PortGraph g = portgraph::random_connected(12, 8, 5);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(4));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10, /*meter_messages=*/true);
  EXPECT_GT(metrics.total_message_bits, 0u);
  EXPECT_GT(metrics.max_message_bits, 64u);
}

TEST(Engine, DistinctMeteringMatchesPerNodeAccounting) {
  // The engine meters each distinct outgoing view once per round; the
  // totals must equal the naive per-node accounting (size of B^r(v) times
  // deg(v), summed over nodes and rounds), recomputed here from the
  // recorded per-round views.
  PortGraph g = portgraph::random_connected(14, 10, 6);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<RecordingProgram*> raw;
  const int depth = 5;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto p = std::make_unique<RecordingProgram>(depth);
    raw.push_back(p.get());
    programs.push_back(std::move(p));
  }
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, depth + 1, /*meter_messages=*/true);
  ASSERT_EQ(metrics.rounds, depth);
  std::size_t expected_total = 0, expected_max = 0;
  std::vector<std::size_t> expected_per_round(depth, 0);
  for (std::size_t v = 0; v < g.n(); ++v) {
    std::size_t copies =
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v)));
    for (int r = 0; r < depth; ++r) {
      // In round r each node sends B^r(v) to every neighbor.
      std::size_t bits = repo.serialized_size_bits(
          raw[v]->history()[static_cast<std::size_t>(r)]);
      expected_total += bits * copies;
      expected_max = std::max(expected_max, bits);
      expected_per_round[static_cast<std::size_t>(r)] += bits * copies;
    }
  }
  EXPECT_EQ(metrics.total_message_bits, expected_total);
  EXPECT_EQ(metrics.max_message_bits, expected_max);
  ASSERT_EQ(metrics.bits_per_round.size(), static_cast<std::size_t>(depth));
  ASSERT_EQ(metrics.distinct_views_per_round.size(),
            static_cast<std::size_t>(depth));
  for (int r = 0; r < depth; ++r) {
    EXPECT_EQ(metrics.bits_per_round[static_cast<std::size_t>(r)],
              expected_per_round[static_cast<std::size_t>(r)]);
    EXPECT_GE(metrics.distinct_views_per_round[static_cast<std::size_t>(r)],
              1u);
    EXPECT_LE(metrics.distinct_views_per_round[static_cast<std::size_t>(r)],
              g.n());
  }
  std::size_t sum = 0;
  for (std::size_t b : metrics.bits_per_round) sum += b;
  EXPECT_EQ(sum, metrics.total_message_bits);
}

TEST(Engine, SymmetricRingHasOneDistinctViewPerRound) {
  // Anonymity makes all ring nodes' views equal every round, so the
  // distinct-once metering performs exactly one size computation per
  // round — the contract behind the S1 ring scaling cells.
  PortGraph g = portgraph::ring(8);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(4));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10, /*meter_messages=*/true);
  ASSERT_EQ(metrics.distinct_views_per_round.size(), 4u);
  for (std::size_t d : metrics.distinct_views_per_round) EXPECT_EQ(d, 1u);
}

TEST(Engine, PerRoundBreakdownsEmptyWhenUnmetered) {
  PortGraph g = portgraph::path(4);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<RecordingProgram>(3));
  Engine engine(g, repo);
  RunMetrics metrics = engine.run(programs, 10);
  EXPECT_TRUE(metrics.bits_per_round.empty());
  EXPECT_TRUE(metrics.distinct_views_per_round.empty());
}

TEST(Engine, RejectsWrongProgramCount) {
  PortGraph g = portgraph::ring(4);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<RecordingProgram>(1));
  Engine engine(g, repo);
  EXPECT_THROW(engine.run(programs, 5), std::logic_error);
}

TEST(Engine, AnonymityNodesWithEqualViewsBehaveIdentically) {
  // In the fully symmetric oriented ring all nodes must hold the same view
  // at every round — the impossibility core of the paper.
  PortGraph g = portgraph::ring(5);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<RecordingProgram*> raw;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto p = std::make_unique<RecordingProgram>(4);
    raw.push_back(p.get());
    programs.push_back(std::move(p));
  }
  Engine engine(g, repo);
  engine.run(programs, 10);
  for (int t = 0; t <= 4; ++t)
    for (std::size_t v = 1; v < g.n(); ++v)
      EXPECT_EQ(raw[v]->history()[static_cast<std::size_t>(t)],
                raw[0]->history()[static_cast<std::size_t>(t)]);
}

}  // namespace
}  // namespace anole::sim
