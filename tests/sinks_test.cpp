// Golden-output tests for the result sinks. The JSON golden locks the
// emitted schema: if this test breaks, downstream consumers of
// anole_bench --format json break too — change it deliberately.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "runner/bench_out.hpp"
#include "runner/runner.hpp"
#include "runner/sinks.hpp"

namespace anole {
namespace {

using runner::Row;
using runner::Value;

// A tiny E1-style scenario with fixed values: same column shape as the
// real E1 table, but pure rows so the golden bytes never drift.
runner::Scenario tiny_e1_style() {
  runner::Scenario s;
  s.name = "tiny-e1";
  s.reference = "Theorem 3.1";
  s.tables.push_back(runner::TableSpec{
      "E1", "tiny fixture",
      {"family", "n", "phi", "rounds", "advice bits", "bits/(n log n)",
       "elected"}});
  s.add_cell("grid/2x3", 0, [] {
    return std::vector<Row>{
        Row{"grid(2x3)", 6, 1, 1, 120, Value::real(7.7385, 2), "yes"}};
  });
  s.add_cell("wheel/4", 0, [] {
    return std::vector<Row>{
        Row{"wheel(4)", 5, 1, 1, 96, Value::real(8.2707, 2), "yes"}};
  });
  return s;
}

runner::ScenarioOutcome run_tiny(std::size_t threads = 2) {
  return runner::ExperimentRunner(runner::RunOptions{threads})
      .run(tiny_e1_style());
}

std::string emit(const runner::ResultSink& sink,
                 const runner::ScenarioOutcome& outcome) {
  std::ostringstream oss;
  sink.emit(outcome, oss);
  return oss.str();
}

TEST(JsonSink, GoldenTinyE1Scenario) {
  const std::string expected = R"json({
  "scenario": "tiny-e1",
  "reference": "Theorem 3.1",
  "deterministic": true,
  "tables": [
    {
      "id": "E1",
      "caption": "tiny fixture",
      "columns": ["family", "n", "phi", "rounds", "advice bits", "bits/(n log n)", "elected"],
      "rows": [
        {"cell": "grid/2x3", "values": {"family": "grid(2x3)", "n": 6, "phi": 1, "rounds": 1, "advice bits": 120, "bits/(n log n)": 7.74, "elected": "yes"}},
        {"cell": "wheel/4", "values": {"family": "wheel(4)", "n": 5, "phi": 1, "rounds": 1, "advice bits": 96, "bits/(n log n)": 8.27, "elected": "yes"}}
      ]
    }
  ],
  "failures": []
}
)json";
  EXPECT_EQ(emit(runner::JsonSink(), run_tiny()), expected);
}

TEST(JsonSink, TimingFieldsOnlyWhenRequested) {
  runner::ScenarioOutcome outcome = run_tiny();
  EXPECT_EQ(emit(runner::JsonSink(), outcome).find("wall_ms"),
            std::string::npos);
  std::string timed =
      emit(runner::JsonSink(runner::SinkOptions{true}), outcome);
  EXPECT_NE(timed.find("\"wall_ms\": "), std::string::npos);
}

TEST(JsonSink, FailuresAndEscaping) {
  runner::Scenario s;
  s.name = "fail";
  s.tables.push_back(runner::TableSpec{"T", "", {"a"}});
  s.add_cell("boom", 0, []() -> std::vector<Row> {
    throw std::runtime_error("quote \" and\nnewline");
  });
  std::string json = emit(
      runner::JsonSink(),
      runner::ExperimentRunner(runner::RunOptions{1}).run(s));
  EXPECT_NE(json.find("\"failures\": [\n    {\"cell\": \"boom\", \"error\": "
                      "\"quote \\\" and\\nnewline\"}"),
            std::string::npos);
}

TEST(CsvSink, GoldenTinyE1Scenario) {
  const std::string expected =
      "table,cell,family,n,phi,rounds,advice bits,bits/(n log n),elected\n"
      "E1,grid/2x3,grid(2x3),6,1,1,120,7.74,yes\n"
      "E1,wheel/4,wheel(4),5,1,1,96,8.27,yes\n";
  EXPECT_EQ(emit(runner::CsvSink(), run_tiny()), expected);
}

TEST(CsvSink, EscapesSpecialCells) {
  runner::Scenario s;
  s.name = "csv";
  s.tables.push_back(runner::TableSpec{"T", "", {"text"}});
  s.add_cell("c", 0, [] {
    return std::vector<Row>{Row{"a,b \"quoted\""}};
  });
  std::string csv = emit(
      runner::CsvSink(),
      runner::ExperimentRunner(runner::RunOptions{1}).run(s));
  EXPECT_EQ(csv, "table,cell,text\nT,c,\"a,b \"\"quoted\"\"\"\n");
}

TEST(CsvSink, EscapesQuotesCommasNewlinesEndToEnd) {
  // RFC-4180 end to end through Table::print_csv: quotes doubled, any cell
  // containing a comma, quote or line break wrapped in quotes — including
  // the cell label column the sink prepends.
  runner::Scenario s;
  s.name = "csv-esc";
  s.tables.push_back(runner::TableSpec{"T", "", {"name", "note"}});
  s.add_cell("cell,with \"label\"", 0, [] {
    return std::vector<Row>{Row{"plain", "a,b"},
                            Row{"quo\"te", "line\nbreak"},
                            Row{"cr\rcell", "all,of\n\"it\""}};
  });
  std::string csv =
      emit(runner::CsvSink(),
           runner::ExperimentRunner(runner::RunOptions{1}).run(s));
  EXPECT_EQ(csv,
            "table,cell,name,note\n"
            "T,\"cell,with \"\"label\"\"\",plain,\"a,b\"\n"
            "T,\"cell,with \"\"label\"\"\",\"quo\"\"te\",\"line\nbreak\"\n"
            "T,\"cell,with \"\"label\"\"\",\"cr\rcell\",\"all,of\n\"\"it\"\"\"\n");
}

TEST(BenchOut, RecordsHarvestNamedColumns) {
  runner::Scenario s;
  s.name = "s1";
  s.tables.push_back(
      runner::TableSpec{"S1", "", {"family", "n", "rounds", "total bits"}});
  s.add_cell("ring/n=8", 0, [] {
    return std::vector<Row>{Row{"ring", 8, 4, 1234}};
  });
  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{1}).run(s);
  ASSERT_EQ(outcome.cells.size(), 1u);
  outcome.cells[0].wall_ms = 2.0;  // pin the one non-deterministic field
  std::ostringstream oss;
  runner::write_bench_records(outcome, oss);
  EXPECT_EQ(oss.str(),
            "{\"scenario\": \"s1\", \"cell\": \"ring/n=8\", \"wall_ms\": 2.00"
            ", \"n\": 8, \"rounds\": 4, \"bits\": 1234"
            ", \"cells_per_sec\": 16000}\n");
}

TEST(BenchOut, OmitsFieldsWithoutMatchingColumnsAndSkipsFailures) {
  runner::Scenario s;
  s.name = "plain";
  s.tables.push_back(runner::TableSpec{"P", "", {"label", "value"}});
  s.add_cell("ok", 0, [] { return std::vector<Row>{Row{"x", 7}}; });
  s.add_cell("bad", 0, []() -> std::vector<Row> {
    throw std::runtime_error("cell failed");
  });
  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{1}).run(s);
  outcome.cells[0].wall_ms = 1.0;
  std::ostringstream oss;
  runner::write_bench_records(outcome, oss);
  EXPECT_EQ(oss.str(),
            "{\"scenario\": \"plain\", \"cell\": \"ok\", \"wall_ms\": 1.00}\n");
}

TEST(TextSink, RendersCaptionRowsAndFailures) {
  runner::Scenario s = tiny_e1_style();
  s.add_cell("broken", 0,
             []() -> std::vector<Row> { throw std::runtime_error("nope"); });
  std::string text = emit(
      runner::TextSink(),
      runner::ExperimentRunner(runner::RunOptions{2}).run(s));
  EXPECT_NE(text.find("E1 — tiny fixture"), std::string::npos);
  EXPECT_NE(text.find("grid(2x3)"), std::string::npos);
  EXPECT_NE(text.find("FAILED cells (1 of 3):"), std::string::npos);
  EXPECT_NE(text.find("nope"), std::string::npos);
}

TEST(Sinks, FactoryKnowsAllFormatsAndRejectsOthers) {
  EXPECT_NE(runner::make_sink("text"), nullptr);
  EXPECT_NE(runner::make_sink("csv"), nullptr);
  EXPECT_NE(runner::make_sink("json"), nullptr);
  EXPECT_THROW(runner::make_sink("xml"), std::invalid_argument);
}

TEST(Value, RenderingRules) {
  EXPECT_EQ(Value("x").text(), "x");
  EXPECT_EQ(Value("x").json(), "\"x\"");
  EXPECT_EQ(Value(42).json(), "42");
  EXPECT_EQ(Value(true).text(), "yes");
  EXPECT_EQ(Value(true).json(), "true");
  EXPECT_EQ(Value::real(3.14159, 2).text(), "3.14");
  EXPECT_EQ(Value::real(3.14159, 2).json(), "3.14");
  EXPECT_EQ(runner::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

}  // namespace
}  // namespace anole
