// Tests for persistent ViewRepo snapshots (DESIGN.md §13): blob
// round-trips (Copy and Mmap byte-equality), corruption detection,
// warm-start resume equality against cold runs (serial id identity and
// --threads partition identity), promotion past mmapped segments, and
// run_full_info over a loaded repo.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "coding/blob.hpp"
#include "portgraph/builders.hpp"
#include "sim/full_info.hpp"
#include "util/thread_pool.hpp"
#include "views/profile.hpp"
#include "views/snapshot.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

namespace fs = std::filesystem;

/// A unique temp path per test, removed on destruction.
class TempSnap {
 public:
  explicit TempSnap(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("anole-snap-test-" + tag + "-" +
                std::to_string(::getpid()) + ".snap"))
                  .string()) {}
  ~TempSnap() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Structural equality of one record across two repos (the loaded repo
/// must reproduce every public observation bit-for-bit).
void expect_record_equal(const ViewRepo& a, const ViewRepo& b, ViewId id) {
  ASSERT_EQ(a.degree(id), b.degree(id)) << "id " << id;
  ASSERT_EQ(a.depth(id), b.depth(id)) << "id " << id;
  ASSERT_EQ(a.rank(id), b.rank(id)) << "id " << id;
  std::span<const ChildRef> ka = a.children(id);
  std::span<const ChildRef> kb = b.children(id);
  ASSERT_EQ(ka.size(), kb.size()) << "id " << id;
  for (std::size_t j = 0; j < ka.size(); ++j)
    ASSERT_EQ(ka[j], kb[j]) << "id " << id << " child " << j;
}

/// The first-occurrence class image of a level: two levels are the same
/// partition iff these images are equal, whatever the raw ids are (the
/// cross-thread-count comparison, DESIGN.md §10).
std::vector<std::uint32_t> partition_image(const std::vector<ViewId>& level) {
  std::vector<std::uint32_t> image(level.size());
  std::unordered_map<ViewId, std::uint32_t> seen;
  for (std::size_t v = 0; v < level.size(); ++v) {
    auto [it, fresh] =
        seen.emplace(level[v], static_cast<std::uint32_t>(seen.size()));
    image[v] = it->second;
    (void)fresh;
  }
  return image;
}

TEST(Snapshot, CopyRoundTripByteEqualityAcrossFamilies) {
  struct Case {
    const char* tag;
    portgraph::PortGraph graph;
    int depth;
  };
  Case cases[] = {
      {"ring", portgraph::ring(64), 40},
      {"torus", portgraph::torus(4, 6), 16},
      {"random", portgraph::random_connected(96, 140, 5), 4},
      {"grid", portgraph::grid(5, 7), 8},
  };
  for (Case& c : cases) {
    ViewRepo repo;
    ViewProfile p = compute_profile(c.graph, repo, c.depth);
    TempSnap snap(std::string("copy-") + c.tag);
    repo.save(snap.path());
    std::unique_ptr<ViewRepo> loaded =
        ViewRepo::load(snap.path(), LoadMode::Copy);
    ASSERT_EQ(loaded->size(), repo.size()) << c.tag;
    // Serial build → no arena gaps → ids are dense [0, size).
    for (ViewId id = 0; id < static_cast<ViewId>(repo.size()); ++id)
      expect_record_equal(repo, *loaded, id);
    // Memoized DagStats and compare verdicts survive the trip.
    for (portgraph::NodeId v : {0, 1, 2}) {
      ViewId id = p.view(c.depth, v);
      EXPECT_EQ(loaded->stats(id).records, repo.stats(id).records) << c.tag;
      EXPECT_EQ(loaded->stats(id).edges, repo.stats(id).edges) << c.tag;
    }
    ViewId a = p.view(c.depth, 0);
    ViewId b =
        p.view(c.depth, static_cast<portgraph::NodeId>(c.graph.n() / 2));
    EXPECT_EQ(loaded->compare(a, b), repo.compare(a, b)) << c.tag;
    // The rebuilt intern index: re-interning an existing signature must
    // hit, not allocate.
    std::vector<ChildRef> kids(repo.children(a).begin(),
                               repo.children(a).end());
    std::size_t before = loaded->size();
    EXPECT_EQ(loaded->intern(kids), a) << c.tag;
    EXPECT_EQ(loaded->size(), before) << c.tag;
  }
}

TEST(Snapshot, PoolBuiltRepoWithArenaGapsRoundTrips) {
  portgraph::PortGraph g = portgraph::random_connected(4096, 6100, 3);
  util::ThreadPool pool(4);
  ViewRepo repo;
  ViewProfile p = compute_profile(
      g, repo, ProfileOptions{.min_depth = 3, .pool = &pool});
  TempSnap snap("gaps");
  repo.save(snap.path());
  std::unique_ptr<ViewRepo> loaded =
      ViewRepo::load(snap.path(), LoadMode::Copy);
  ASSERT_EQ(loaded->size(), repo.size());
  // Ids are sparse (arena gaps); walk the ones the profile holds.
  for (int t = 0; t <= p.computed_depth(); ++t)
    for (std::size_t v = 0; v < g.n(); v += 97)
      expect_record_equal(repo, *loaded,
                          p.view(t, static_cast<portgraph::NodeId>(v)));
  // Index hits for existing signatures, across the gap pattern.
  ViewId id = p.view(p.computed_depth(), 1234);
  std::vector<ChildRef> kids(repo.children(id).begin(),
                             repo.children(id).end());
  std::size_t before = loaded->size();
  EXPECT_EQ(loaded->intern(kids), id);
  EXPECT_EQ(loaded->size(), before);
}

TEST(Snapshot, MmapMatchesCopy) {
  portgraph::PortGraph g = portgraph::ring(128);
  ViewRepo repo;
  ViewProfile p = compute_profile(g, repo, 50);
  TempSnap snap("mmap");
  save_snapshot(snap.path(), repo, {});
  LoadedSnapshot copy = load_snapshot(snap.path(), LoadMode::Copy);
  LoadedSnapshot mapped = load_snapshot(snap.path(), LoadMode::Mmap);
  ASSERT_EQ(copy.repo->size(), mapped.repo->size());
  for (ViewId id = 0; id < static_cast<ViewId>(copy.repo->size()); ++id)
    expect_record_equal(*copy.repo, *mapped.repo, id);
  ViewId last = p.view(50, 0);
  EXPECT_EQ(mapped.repo->stats(last).records, copy.repo->stats(last).records);
  // Interning into the mapped repo works (promotion contract) and dedups
  // against the mapped records.
  std::size_t before = mapped.repo->size();
  std::vector<ChildRef> kids(copy.repo->children(last).begin(),
                             copy.repo->children(last).end());
  EXPECT_EQ(mapped.repo->intern(kids), last);
  EXPECT_EQ(mapped.repo->size(), before);
}

TEST(Snapshot, ParallelIndexRebuildMatchesSerial) {
  portgraph::PortGraph g = portgraph::random_connected(2048, 3000, 17);
  ViewRepo repo;
  ViewProfile p = compute_profile(g, repo, 3);
  TempSnap snap("parshards");
  save_snapshot(snap.path(), repo, {});
  util::ThreadPool pool(4);
  LoadedSnapshot par = load_snapshot(snap.path(), LoadMode::Mmap, &pool);
  ASSERT_EQ(par.repo->size(), repo.size());
  for (std::size_t v = 0; v < g.n(); v += 61) {
    ViewId id = p.view(3, static_cast<portgraph::NodeId>(v));
    std::vector<ChildRef> kids(repo.children(id).begin(),
                               repo.children(id).end());
    EXPECT_EQ(par.repo->intern(kids), id);
  }
  EXPECT_EQ(par.repo->size(), repo.size());
}

// ------------------------------------------------------- damaged blobs

class DamagedSnapshot : public ::testing::Test {
 protected:
  void SetUp() override {
    portgraph::PortGraph g = portgraph::ring(48);
    ViewRepo repo;
    (void)compute_profile(g, repo, 20);
    snap_ = std::make_unique<TempSnap>("damage");
    repo.save(snap_->path());
    std::ifstream in(snap_->path(), std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GE(bytes_.size(), 128u);
  }

  void rewrite(const std::vector<char>& bytes) {
    std::ofstream out(snap_->path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Patches header word `w` and recomputes the header checksum, so the
  /// damage under test is reached instead of masked by the checksum line.
  void patch_header_word(std::size_t w, std::uint64_t value) {
    std::vector<char> bytes = bytes_;
    std::memcpy(bytes.data() + 8 * w, &value, 8);
    std::uint64_t csum = coding::fnv1a64(bytes.data(), 8 * 15);
    std::memcpy(bytes.data() + 8 * 15, &csum, 8);
    rewrite(bytes);
  }

  void expect_both_modes_throw() {
    EXPECT_THROW((void)load_snapshot(snap_->path(), LoadMode::Copy),
                 coding::BlobError);
    EXPECT_THROW((void)load_snapshot(snap_->path(), LoadMode::Mmap),
                 coding::BlobError);
  }

  std::unique_ptr<TempSnap> snap_;
  std::vector<char> bytes_;
};

TEST_F(DamagedSnapshot, TruncatedToGarbageHeader) {
  rewrite(std::vector<char>(bytes_.begin(), bytes_.begin() + 100));
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, TruncatedBody) {
  rewrite(std::vector<char>(bytes_.begin(),
                            bytes_.begin() +
                                static_cast<long>(bytes_.size() / 2)));
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, EmptyFile) {
  rewrite({});
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, BadMagic) {
  std::vector<char> bytes = bytes_;
  bytes[0] ^= 0x5a;
  rewrite(bytes);
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, VersionMismatch) {
  patch_header_word(1, 999);  // future format version, valid checksum
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, WrongEndianTag) {
  patch_header_word(2, UINT64_C(0x0807060504030201));
  expect_both_modes_throw();
}

TEST_F(DamagedSnapshot, FlippedBodyByteFailsCopyChecksum) {
  std::vector<char> bytes = bytes_;
  bytes[bytes.size() - 9] ^= 0x01;  // inside the body, past the header
  rewrite(bytes);
  EXPECT_THROW((void)load_snapshot(snap_->path(), LoadMode::Copy),
               coding::BlobError);
}

TEST_F(DamagedSnapshot, CorruptHeaderChecksum) {
  std::vector<char> bytes = bytes_;
  bytes[8 * 15] ^= 0x01;
  rewrite(bytes);
  expect_both_modes_throw();
}

// --------------------------------------------------------- warm starts

TEST(SnapshotWarm, SerialWarmExtendIsByteIdenticalToCold) {
  struct Case {
    const char* tag;
    portgraph::PortGraph graph;
    int d0;
    int d;
  };
  Case cases[] = {
      {"ring", portgraph::ring(4096), 64, 96},
      {"torus", portgraph::torus(16, 16), 16, 24},
      {"random", portgraph::random_connected(512, 800, 9), 4, 7},
  };
  for (Case& c : cases) {
    // Prep to D0 and snapshot with an anchor.
    ViewRepo prep;
    ViewProfile pp = compute_profile(
        c.graph, prep,
        ProfileOptions{.min_depth = c.d0, .keep_history = false});
    SweepAnchor anchor = make_anchor(c.graph, pp.last_level(),
                                     pp.class_counts);
    TempSnap snap(std::string("warm-") + c.tag);
    save_snapshot(snap.path(), prep,
                  std::span<const SweepAnchor>(&anchor, 1));

    // Cold: fresh repo straight to D.
    ViewRepo cold_repo;
    ViewProfile cold = compute_profile(
        c.graph, cold_repo,
        ProfileOptions{.min_depth = c.d, .keep_history = false});

    // Warm: mmap-attach and extend to the same D.
    LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Mmap);
    const SweepAnchor* stored = s.anchor_for(graph_fingerprint(c.graph));
    ASSERT_NE(stored, nullptr) << c.tag;
    ViewProfile warm = compute_profile(
        c.graph, *s.repo,
        ProfileOptions{.min_depth = c.d,
                       .keep_history = false,
                       .warm = stored});

    // Byte identity: ids, counts, feasibility, ranks, compare verdicts.
    EXPECT_EQ(warm.class_counts, cold.class_counts) << c.tag;
    EXPECT_EQ(warm.feasible, cold.feasible) << c.tag;
    EXPECT_EQ(warm.election_index, cold.election_index) << c.tag;
    ASSERT_EQ(warm.last_level(), cold.last_level()) << c.tag;
    EXPECT_EQ(s.repo->size(), cold_repo.size()) << c.tag;
    for (std::size_t v = 0; v < c.graph.n(); v += 31) {
      ViewId id = cold.last_level()[v];
      EXPECT_EQ(s.repo->rank(id), cold_repo.rank(id)) << c.tag;
    }
    EXPECT_EQ(argmin_view(*s.repo, warm.last_level()),
              argmin_view(cold_repo, cold.last_level()))
        << c.tag;
  }
}

TEST(SnapshotWarm, WarmMatchesColdUnderThreadPool) {
  portgraph::PortGraph g = portgraph::random_connected(4096, 6200, 21);
  util::ThreadPool pool(4);
  ViewRepo prep;
  ViewProfile pp = compute_profile(
      g, prep,
      ProfileOptions{.min_depth = 5, .keep_history = false, .pool = &pool});
  SweepAnchor anchor = make_anchor(g, pp.last_level(), pp.class_counts);
  TempSnap snap("warm-pool");
  save_snapshot(snap.path(), prep, std::span<const SweepAnchor>(&anchor, 1));

  ViewRepo cold_repo;
  ViewProfile cold = compute_profile(
      g, cold_repo,
      ProfileOptions{.min_depth = 8, .keep_history = false, .pool = &pool});

  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Mmap, &pool);
  ViewProfile warm = compute_profile(
      g, *s.repo,
      ProfileOptions{.min_depth = 8,
                     .keep_history = false,
                     .pool = &pool,
                     .warm = s.anchor_for(graph_fingerprint(g))});

  // With a pool, raw id values are schedule-dependent; everything above
  // them must match (DESIGN.md §10): counts, the partition itself, the
  // record set size, feasibility and the argmin verdict.
  EXPECT_EQ(warm.class_counts, cold.class_counts);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_EQ(warm.election_index, cold.election_index);
  EXPECT_EQ(partition_image(warm.last_level()),
            partition_image(cold.last_level()));
  EXPECT_EQ(s.repo->size(), cold_repo.size());
  EXPECT_EQ(argmin_view(*s.repo, warm.last_level()),
            argmin_view(cold_repo, cold.last_level()));
}

TEST(SnapshotWarm, NonStabilizedAnchorResumesThroughFullPipeline) {
  // A feasible graph's profile can finish without the trailing counts
  // ever repeating (all-distinct before the fixed point): its anchor is
  // NOT stabilized, and the warm path must fall back to expanding the
  // stored level and advancing through the full pipeline.
  portgraph::PortGraph g = portgraph::random_connected(256, 420, 11);
  ViewRepo prep;
  ViewProfile pp =
      compute_profile(g, prep, ProfileOptions{.keep_history = false});
  SweepAnchor anchor = make_anchor(g, pp.last_level(), pp.class_counts);
  ASSERT_TRUE(pp.feasible);
  ASSERT_FALSE(anchor.stabilized());
  TempSnap snap("midflight");
  save_snapshot(snap.path(), prep, std::span<const SweepAnchor>(&anchor, 1));

  int d = pp.computed_depth() + 3;
  ViewRepo cold_repo;
  ViewProfile cold = compute_profile(
      g, cold_repo, ProfileOptions{.min_depth = d, .keep_history = false});

  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Copy);
  ViewProfile warm = compute_profile(
      g, *s.repo,
      ProfileOptions{.min_depth = d,
                     .keep_history = false,
                     .warm = s.anchor_for(anchor.fingerprint)});
  EXPECT_EQ(warm.class_counts, cold.class_counts);
  EXPECT_EQ(warm.last_level(), cold.last_level());
  EXPECT_EQ(s.repo->size(), cold_repo.size());
}

TEST(SnapshotWarm, PromotionPastFullyMappedSegment) {
  // Push the prep repo past one full 64K segment so the mmap load aims
  // segment 0 into the mapping; the warm extension then interns past the
  // stored high-water mark — heap promotion — while dedup, compare and
  // rank reads keep hitting the mapped records.
  portgraph::PortGraph g = portgraph::random_connected(8192, 12500, 13);
  ViewRepo prep;
  ViewProfile pp = compute_profile(
      g, prep, ProfileOptions{.min_depth = 9, .keep_history = false});
  ASSERT_GT(prep.size(), std::size_t{1} << 16);
  SweepAnchor anchor = make_anchor(g, pp.last_level(), pp.class_counts);
  TempSnap snap("promote");
  save_snapshot(snap.path(), prep, std::span<const SweepAnchor>(&anchor, 1));

  ViewRepo cold_repo;
  ViewProfile cold = compute_profile(
      g, cold_repo, ProfileOptions{.min_depth = 11, .keep_history = false});

  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Mmap);
  ViewProfile warm = compute_profile(
      g, *s.repo,
      ProfileOptions{.min_depth = 11,
                     .keep_history = false,
                     .warm = s.anchor_for(graph_fingerprint(g))});
  EXPECT_EQ(warm.class_counts, cold.class_counts);
  EXPECT_EQ(warm.last_level(), cold.last_level());
  EXPECT_EQ(s.repo->size(), cold_repo.size());
}

// ------------------------------------------------- run_full_info warm

class ComForRounds final : public sim::FullInfoProgram {
 public:
  explicit ComForRounds(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int rounds) override {
    if (rounds >= target_) done_ = true;
  }

 private:
  int target_;
  bool done_ = false;
};

sim::RunMetrics metered_com(const portgraph::PortGraph& g, ViewRepo& repo,
                            int rounds) {
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<ComForRounds>(rounds));
  return sim::run_full_info(g, repo, programs, rounds + 1,
                            /*meter_messages=*/true);
}

TEST(SnapshotWarm, RunFullInfoOverLoadedRepoAllocatesNothing) {
  portgraph::PortGraph g = portgraph::torus(8, 8);
  int rounds = 12;
  ViewRepo prep;
  (void)compute_profile(
      g, prep, ProfileOptions{.min_depth = rounds, .keep_history = false});
  TempSnap snap("fullinfo");
  prep.save(snap.path());

  ViewRepo cold_repo;
  sim::RunMetrics cold = metered_com(g, cold_repo, rounds);

  std::unique_ptr<ViewRepo> warm_repo =
      ViewRepo::load(snap.path(), LoadMode::Mmap);
  std::size_t before = warm_repo->size();
  sim::RunMetrics warm = metered_com(g, *warm_repo, rounds);

  // Every intern hits the loaded index: no records allocated, and all
  // metric bits identical to the cold run.
  EXPECT_EQ(warm_repo->size(), before);
  EXPECT_EQ(warm.rounds, cold.rounds);
  EXPECT_EQ(warm.decision_round, cold.decision_round);
  EXPECT_EQ(warm.outputs, cold.outputs);
  EXPECT_EQ(warm.message_count, cold.message_count);
  EXPECT_EQ(warm.total_message_bits, cold.total_message_bits);
  EXPECT_EQ(warm.max_message_bits, cold.max_message_bits);
  EXPECT_EQ(warm.bits_per_round, cold.bits_per_round);
  EXPECT_EQ(warm.distinct_views_per_round, cold.distinct_views_per_round);
  EXPECT_EQ(warm.timed_out, cold.timed_out);
}

// ----------------------------------------------------------- inspect

TEST(Snapshot, InspectReportsSectionsWithoutRecompute) {
  portgraph::PortGraph g = portgraph::ring(96);
  ViewRepo repo;
  ViewProfile p = compute_profile(
      g, repo, ProfileOptions{.min_depth = 30, .keep_history = false});
  SweepAnchor anchor = make_anchor(g, p.last_level(), p.class_counts);
  TempSnap snap("inspect");
  save_snapshot(snap.path(), repo, std::span<const SweepAnchor>(&anchor, 1));

  SnapshotInfo info = inspect_snapshot(snap.path());
  EXPECT_EQ(info.format_version, 1u);
  EXPECT_EQ(info.file_bytes, fs::file_size(snap.path()));
  EXPECT_EQ(info.records, repo.size());
  EXPECT_GE(info.high_water, info.records);
  std::uint64_t sum = 0;
  for (std::uint64_t c : info.records_per_depth) sum += c;
  EXPECT_EQ(sum, info.records);
  ASSERT_EQ(info.anchors.size(), 1u);
  EXPECT_EQ(info.anchors[0].fingerprint, anchor.fingerprint);
  EXPECT_EQ(info.anchors[0].n, g.n());
  EXPECT_EQ(info.anchors[0].depth, anchor.depth());
  EXPECT_EQ(info.anchors[0].classes, anchor.classes());
  EXPECT_TRUE(info.anchors[0].stabilized);
}

TEST(Snapshot, AnchorFingerprintGuardsWrongGraph) {
  portgraph::PortGraph g = portgraph::ring(64);
  portgraph::PortGraph other = portgraph::ring(66);
  ViewRepo repo;
  ViewProfile p = compute_profile(
      g, repo, ProfileOptions{.min_depth = 8, .keep_history = false});
  SweepAnchor anchor = make_anchor(g, p.last_level(), p.class_counts);
  TempSnap snap("wronggraph");
  save_snapshot(snap.path(), repo, std::span<const SweepAnchor>(&anchor, 1));
  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Copy);
  EXPECT_EQ(s.anchor_for(graph_fingerprint(other)), nullptr);
  const SweepAnchor* stored = s.anchor_for(graph_fingerprint(g));
  ASSERT_NE(stored, nullptr);
  // Resuming against the wrong graph is a loud stop, not silent garbage.
  EXPECT_THROW(
      (void)compute_profile(
          other, *s.repo,
          ProfileOptions{.min_depth = 9, .keep_history = false,
                         .warm = stored}),
      std::logic_error);
}

// ----------------------------------------------------- crash-safe saves

TEST(SnapshotCrashSafe, FailedSaveLeavesPreviousSnapshotIntact) {
  portgraph::PortGraph g = portgraph::ring(32);
  ViewRepo repo;
  (void)compute_profile(g, repo, 8);
  TempSnap snap("crashsafe");
  repo.save(snap.path());
  std::vector<char> before;
  {
    std::ifstream in(snap.path(), std::ios::binary);
    before.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  // Force the save to fail before the rename: occupy the temp path with
  // a directory, so neither the O_EXCL open nor the stale-temp fallback
  // can create the file.
  const std::string tmp =
      snap.path() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  fs::create_directory(tmp);
  EXPECT_THROW(repo.save(snap.path()), coding::BlobError);
  fs::remove(tmp);
  // The damaged partial write never reached the target: the previous
  // complete snapshot is still there, bit for bit, and loads.
  std::vector<char> after;
  {
    std::ifstream in(snap.path(), std::ios::binary);
    after.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(before, after);
  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Copy);
  EXPECT_EQ(s.repo->size(), repo.size());
}

TEST(SnapshotCrashSafe, SuccessfulSaveLeavesNoStrayTemp) {
  portgraph::PortGraph g = portgraph::ring(32);
  ViewRepo repo;
  (void)compute_profile(g, repo, 8);
  TempSnap snap("notemp");
  repo.save(snap.path());
  const std::string stem = fs::path(snap.path()).filename().string();
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(snap.path()).parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(name.rfind(stem + ".tmp", 0) == 0)
        << "stray temp left behind: " << name;
  }
  (void)load_snapshot(snap.path(), LoadMode::Copy);
}

TEST(SnapshotCrashSafe, StaleTempFromCrashedSaveIsReplaced) {
  portgraph::PortGraph g = portgraph::ring(32);
  ViewRepo repo;
  (void)compute_profile(g, repo, 8);
  TempSnap snap("staletmp");
  const std::string tmp =
      snap.path() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream junk(tmp, std::ios::binary);
    junk << "half-written garbage from a crashed save";
  }
  repo.save(snap.path());
  // The temp was recycled and renamed over the target; nothing stale
  // survives, and the target is a complete valid blob.
  EXPECT_FALSE(fs::exists(tmp));
  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Copy);
  EXPECT_EQ(s.repo->size(), repo.size());
}

TEST(SnapshotCrashSafe, SaveOverExistingReplacesAtomically) {
  portgraph::PortGraph small = portgraph::ring(16);
  portgraph::PortGraph big = portgraph::ring(48);
  TempSnap snap("replace");
  {
    ViewRepo repo;
    (void)compute_profile(small, repo, 6);
    repo.save(snap.path());
  }
  ViewRepo repo;
  (void)compute_profile(big, repo, 12);
  repo.save(snap.path());
  LoadedSnapshot s = load_snapshot(snap.path(), LoadMode::Copy);
  EXPECT_EQ(s.repo->size(), repo.size());
}

}  // namespace
}  // namespace anole::views
