// Pins the structure-of-arrays signature pipeline (DESIGN.md §11):
//
//   (a) the batched Refiner advance replays the per-node AoS intern loop
//       id for id (serial determinism contract), and the batch hash
//       kernels agree with ViewRepo::signature_hash on every node;
//   (b) the explicitly vectorized gather/reduce kernels are bit-identical
//       to the scalar ones, tails and degree specializations included —
//       the property that makes -DANOLE_NO_SIMD builds byte-identical;
//   (c) the dedup scan's software-prefetch distance is a pure throughput
//       knob: any distance produces identical ids;
//   (d) the stable-phase quotient (frozen in SoA form) advances to the
//       same ids as the always-full pipeline;
// plus the attach() scratch trim: rebinding a refiner from a huge graph
// to a tiny one drops the held capacity instead of carrying it along.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "families/hairy.hpp"
#include "portgraph/builders.hpp"
#include "views/refiner.hpp"
#include "views/sig_hash.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

std::vector<PortGraph> pipeline_graphs() {
  std::vector<PortGraph> gs;
  gs.push_back(portgraph::ring(64));
  gs.push_back(portgraph::random_connected(96, 192, 9));
  gs.push_back(portgraph::clique(12));
  gs.push_back(portgraph::torus(4, 5));
  gs.push_back(families::hairy_ring({2, 0, 3, 1}).graph);
  return gs;
}

/// The reference the serial Refiner must replay: one AoS intern per node,
/// in node order.
std::vector<ViewId> naive_advance(const PortGraph& g, ViewRepo& repo,
                                  const std::vector<ViewId>& prev) {
  std::vector<ViewId> next(g.n());
  std::vector<ChildRef> kids;
  for (std::size_t v = 0; v < g.n(); ++v) {
    const auto& row = g.neighbors(static_cast<NodeId>(v));
    kids.clear();
    for (const auto& he : row)
      kids.emplace_back(he.rev_port,
                        prev[static_cast<std::size_t>(he.neighbor)]);
    next[v] = repo.intern(kids);
  }
  return next;
}

std::vector<ViewId> leaf_level(const PortGraph& g, ViewRepo& repo) {
  std::vector<ViewId> level(g.n());
  for (std::size_t v = 0; v < g.n(); ++v)
    level[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  return level;
}

/// Repo-independent image of a level: each id renamed to its
/// first-occurrence index. Two levels are the same partition iff their
/// normalized forms are equal.
std::vector<int> normalized(const std::vector<ViewId>& level) {
  std::vector<int> out(level.size());
  std::vector<std::pair<ViewId, int>> seen;
  for (std::size_t v = 0; v < level.size(); ++v) {
    int cls = -1;
    for (const auto& [id, c] : seen)
      if (id == level[v]) cls = c;
    if (cls < 0) {
      cls = static_cast<int>(seen.size());
      seen.emplace_back(level[v], cls);
    }
    out[v] = cls;
  }
  return out;
}

// ------------------------------------------------------------------- (a)

TEST(SoaPipeline, SerialRefinerReplaysPerNodeInternIds) {
  for (const PortGraph& g : pipeline_graphs()) {
    ViewRepo batch_repo;
    ViewRepo naive_repo;
    Refiner refiner(g, batch_repo);
    refiner.set_quotient_enabled(false);
    std::vector<ViewId> level;
    std::vector<ViewId> next;
    refiner.init_level(level);
    std::vector<ViewId> ref_level = leaf_level(g, naive_repo);
    ASSERT_EQ(level, ref_level);  // leaves intern in the same order
    for (int round = 0; round < 5; ++round) {
      refiner.advance(level, next);
      level.swap(next);
      ref_level = naive_advance(g, naive_repo, ref_level);
      ASSERT_EQ(level, ref_level) << "n=" << g.n() << " round " << round;
    }
    EXPECT_EQ(batch_repo.size(), naive_repo.size());
  }
}

TEST(SoaPipeline, BatchHashMatchesSignatureHashPerNode) {
  for (const PortGraph& g : pipeline_graphs()) {
    std::size_t n = g.n();
    // Flatten the adjacency exactly as Refiner::attach does.
    std::vector<std::uint32_t> offset(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v)
      offset[v + 1] =
          offset[v] +
          static_cast<std::uint32_t>(g.degree(static_cast<NodeId>(v)));
    std::size_t entries = offset[n];
    std::vector<std::uint32_t> nbr(entries);
    std::vector<portgraph::Port> ports(entries);
    std::vector<std::uint64_t> premix(entries);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      for (std::size_t p = 0; p < row.size(); ++p) {
        nbr[offset[v] + p] = static_cast<std::uint32_t>(row[p].neighbor);
        ports[offset[v] + p] = row[p].rev_port;
        premix[offset[v] + p] = sig_hash::entry_premix(
            p, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(row[p].rev_port)));
      }
    }
    // A synthetic previous level with many distinct keys.
    std::vector<ViewId> key(n);
    for (std::size_t v = 0; v < n; ++v)
      key[v] = static_cast<ViewId>((v * 7) % 23);
    const int depth = 3;
    std::vector<ViewId> child(entries);
    std::vector<std::uint64_t> emix(entries);
    std::vector<std::uint64_t> hash(n);
    sig_hash::gather_mix(nbr.data(), key.data(), premix.data(), child.data(),
                         emix.data(), entries);
    sig_hash::reduce_nodes(offset.data(), 0, n, emix.data(), depth,
                           /*uniform_degree=*/0, hash.data());
    std::vector<ChildRef> kids;
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t degree = offset[v + 1] - offset[v];
      std::span<const portgraph::Port> pspan(ports.data() + offset[v], degree);
      std::span<const ViewId> cspan(child.data() + offset[v], degree);
      // Batch == SoA reference == AoS reference, all three.
      std::uint64_t soa = ViewRepo::signature_hash(static_cast<int>(degree),
                                                   depth, pspan, cspan);
      kids.clear();
      for (std::size_t p = 0; p < degree; ++p)
        kids.emplace_back(pspan[p], cspan[p]);
      std::uint64_t aos = ViewRepo::signature_hash(
          static_cast<int>(degree), depth, std::span<const ChildRef>(kids));
      EXPECT_EQ(hash[v], soa) << "node " << v;
      EXPECT_EQ(hash[v], aos) << "node " << v;
    }
  }
}

// ------------------------------------------------------------------- (b)

TEST(SoaKernels, SimdGatherBitIdenticalToScalarIncludingTails) {
  // Sizes straddling the 8-lane strips: empty, sub-strip, strip + tail.
  for (std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{64}, std::size_t{67}, std::size_t{1000}}) {
    std::vector<std::uint32_t> nbr(count);
    std::vector<std::uint64_t> premix(count);
    std::vector<ViewId> key(count + 1);
    std::uint64_t s = 0x12345678u + count;
    auto rng = [&s] {  // SplitMix64 — any deterministic stream works
      s += 0x9e3779b97f4a7c15ull;
      return sig_hash::mix64(s);
    };
    for (std::size_t i = 0; i < count; ++i) {
      nbr[i] = static_cast<std::uint32_t>(rng() % (count + 1));
      premix[i] = rng();
    }
    for (std::size_t i = 0; i <= count; ++i)
      key[i] = static_cast<ViewId>(rng() & 0x7fffffff);
    std::vector<ViewId> child_a(count), child_b(count);
    std::vector<std::uint64_t> emix_a(count), emix_b(count);
    sig_hash::gather_mix_scalar(nbr.data(), key.data(), premix.data(),
                                child_a.data(), emix_a.data(), count);
    sig_hash::gather_mix_simd(nbr.data(), key.data(), premix.data(),
                              child_b.data(), emix_b.data(), count);
    EXPECT_EQ(child_a, child_b) << "count " << count;
    EXPECT_EQ(emix_a, emix_b) << "count " << count;
  }
}

TEST(SoaKernels, UniformDegreeReductionsMatchGenericPath) {
  // Degrees covering the 2/3/4 specializations, the runtime-uniform path
  // (5, 9), and node counts that exercise the 4-node unrolled bodies plus
  // their tails.
  for (int degree : {2, 3, 4, 5, 9}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                          std::size_t{7}, std::size_t{128}}) {
      std::size_t entries = n * static_cast<std::size_t>(degree);
      std::vector<std::uint32_t> offset(n + 1);
      for (std::size_t v = 0; v <= n; ++v)
        offset[v] = static_cast<std::uint32_t>(v * degree);
      std::vector<std::uint64_t> emix(entries);
      std::uint64_t s = 77u * degree + n;
      for (std::size_t j = 0; j < entries; ++j) {
        s += 0x9e3779b97f4a7c15ull;
        emix[j] = sig_hash::mix64(s);
      }
      std::vector<std::uint64_t> fast(n), generic(n);
      sig_hash::reduce_nodes(offset.data(), 0, n, emix.data(), /*depth=*/2,
                             degree, fast.data());
      sig_hash::reduce_nodes(offset.data(), 0, n, emix.data(), /*depth=*/2,
                             /*uniform_degree=*/0, generic.data());
      EXPECT_EQ(fast, generic) << "degree " << degree << " n " << n;
    }
  }
}

// ------------------------------------------------------------------- (c)

TEST(SoaPipeline, PrefetchDistanceNeverChangesIds) {
  int saved = dedup_prefetch_distance();
  for (const PortGraph& g : pipeline_graphs()) {
    std::vector<std::vector<ViewId>> runs;
    for (int pf : {0, 16}) {
      set_dedup_prefetch_distance(pf);
      ViewRepo repo;
      Refiner refiner(g, repo);
      refiner.set_quotient_enabled(false);
      std::vector<ViewId> level;
      std::vector<ViewId> next;
      refiner.init_level(level);
      for (int round = 0; round < 5; ++round) {
        refiner.advance(level, next);
        level.swap(next);
      }
      runs.push_back(level);
    }
    EXPECT_EQ(runs[0], runs[1]) << "n=" << g.n();
  }
  set_dedup_prefetch_distance(saved);
}

// ------------------------------------------------------------------- (d)

TEST(SoaPipeline, QuotientPathMatchesFullPipelineAfterSoAFreeze) {
  for (const PortGraph& g : pipeline_graphs()) {
    ViewRepo repo_q;
    ViewRepo repo_f;
    Refiner quotient(g, repo_q);
    Refiner full(g, repo_f);
    quotient.set_quotient_enabled(true);
    full.set_quotient_enabled(false);
    std::vector<ViewId> lq, nq, lf, nf;
    quotient.init_level(lq);
    full.init_level(lf);
    ASSERT_EQ(lq, lf);
    bool froze = false;
    for (int round = 0; round < 12; ++round) {
      std::size_t cq = quotient.advance(lq, nq);
      std::size_t cf = full.advance(lf, nf);
      lq.swap(nq);
      lf.swap(nf);
      ASSERT_EQ(cq, cf) << "n=" << g.n() << " round " << round;
      ASSERT_EQ(lq, lf) << "n=" << g.n() << " round " << round;
      froze = froze || quotient.stable();
    }
    // The families above all stabilize within the horizon — the SoA
    // quotient columns (qport_/qchild_) actually got exercised.
    EXPECT_TRUE(froze) << "n=" << g.n();
    EXPECT_EQ(repo_q.size(), repo_f.size());
  }
}

// ------------------------------------------------------- attach() trim

TEST(SoaPipeline, AttachTrimsScratchOnBigToSmallRebind) {
  ViewRepo repo;
  PortGraph big = portgraph::ring(1 << 16);
  PortGraph small = portgraph::random_connected(64, 128, 9);
  Refiner refiner(big, repo);
  std::vector<ViewId> level;
  std::vector<ViewId> next;
  refiner.init_level(level);
  for (int round = 0; round < 3; ++round) {
    refiner.advance(level, next);
    level.swap(next);
  }
  std::size_t big_bytes = refiner.scratch_bytes();
  refiner.attach(small);
  std::size_t small_bytes = refiner.scratch_bytes();
  // The 2^16-node columns alone hold megabytes; a 64-node graph needs a
  // few KB. The trim must drop the bulk, not carry it along.
  EXPECT_LT(small_bytes, big_bytes / 64);
  // And the refiner still works after the trim: same partitions as a
  // fresh refiner over a fresh repo (raw ids differ — the reused repo
  // already holds the big ring's views).
  ViewRepo fresh_repo;
  Refiner fresh(small, fresh_repo);
  std::vector<ViewId> la, lb, na, nb;
  refiner.init_level(la);
  fresh.init_level(lb);
  for (int round = 0; round < 4; ++round) {
    refiner.advance(la, na);
    fresh.advance(lb, nb);
    la.swap(na);
    lb.swap(nb);
    ASSERT_EQ(normalized(la), normalized(lb)) << "round " << round;
  }
}

}  // namespace
}  // namespace anole::views
