// Tests for the stable-phase quotient advancer (DESIGN.md §9): once the
// refinement partition stabilizes, a round interns exactly C views — and
// nothing else about the pipeline changes. Pinned here:
//   - quotient profiles are id-identical to the naive per-node intern
//     reference (and to the quotient-disabled batched path) well past
//     stabilization, on ring/random/clique/hairy/path graphs;
//   - a stable round interns exactly C records (debug counter + repo size
//     deltas, driving the Refiner directly);
//   - run_full_info metrics and per-node view histories are byte-identical
//     with the quotient forced on vs off, and to Engine::run;
//   - pool invariance holds across the stable phase;
//   - extend_profile rides the quotient without changing a level.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "families/hairy.hpp"
#include "portgraph/builders.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "util/thread_pool.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

/// Restores the process-wide quotient switch on scope exit, so a failing
/// assertion never leaks a disabled fast path into other tests.
class QuotientSwitch {
 public:
  explicit QuotientSwitch(bool enabled) { set_stable_quotient_enabled(enabled); }
  ~QuotientSwitch() { set_stable_quotient_enabled(true); }
};

/// The pre-Refiner reference: one ViewRepo::intern per node per level.
/// Same loop as refiner_test.cpp, kept deliberately naive.
std::vector<std::vector<ViewId>> naive_levels(const PortGraph& g,
                                              ViewRepo& repo, int depth) {
  std::size_t n = g.n();
  std::vector<std::vector<ViewId>> levels;
  std::vector<ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  levels.push_back(level);
  std::vector<ChildRef> kids;
  for (int t = 0; t < depth; ++t) {
    const std::vector<ViewId>& prev = levels.back();
    std::vector<ViewId> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          prev[static_cast<std::size_t>(he.neighbor)]);
      next[v] = repo.intern(kids);
    }
    levels.push_back(std::move(next));
  }
  return levels;
}

std::vector<PortGraph> stable_phase_graphs() {
  std::vector<PortGraph> graphs;
  graphs.push_back(portgraph::ring(48));
  graphs.push_back(portgraph::ring(17));
  graphs.push_back(portgraph::path(21));
  graphs.push_back(portgraph::clique(6));
  graphs.push_back(portgraph::grid(4, 6));
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    graphs.push_back(portgraph::random_connected(26, 22, seed));
  graphs.push_back(families::hairy_ring({2, 0, 3, 1, 0, 2, 1}).graph);
  return graphs;
}

TEST(StablePhase, QuotientProfilesIdenticalToNaiveFarPastStabilization) {
  // min_depth far beyond any of these graphs' stabilization depth: most of
  // the sweep runs through the frozen quotient, and every level must still
  // be id-identical (as integers) to the per-node reference.
  const int min_depth = 24;
  for (const PortGraph& g : stable_phase_graphs()) {
    ViewRepo repo_naive;
    std::vector<std::vector<ViewId>> want =
        naive_levels(g, repo_naive, min_depth);
    ViewRepo repo_quot;
    ViewProfile got = compute_profile(g, repo_quot, min_depth);
    ASSERT_GE(got.computed_depth(), min_depth);
    for (int t = 0; t <= min_depth; ++t)
      EXPECT_EQ(got.ids[static_cast<std::size_t>(t)],
                want[static_cast<std::size_t>(t)])
          << "level " << t;
    // Identical records in identical order on both repos.
    EXPECT_EQ(repo_quot.size(), repo_naive.size());
  }
}

TEST(StablePhase, QuotientOnOffProfilesIdentical) {
  const int min_depth = 20;
  for (const PortGraph& g : stable_phase_graphs()) {
    ViewRepo repo_on;
    ViewRepo repo_off;
    ViewProfile on = compute_profile(g, repo_on, min_depth);
    ViewProfile off;
    {
      QuotientSwitch off_switch(false);
      off = compute_profile(g, repo_off, min_depth);
    }
    EXPECT_EQ(on.class_counts, off.class_counts);
    EXPECT_EQ(on.feasible, off.feasible);
    EXPECT_EQ(on.election_index, off.election_index);
    ASSERT_EQ(on.ids.size(), off.ids.size());
    for (std::size_t t = 0; t < on.ids.size(); ++t)
      EXPECT_EQ(on.ids[t], off.ids[t]) << "level " << t;
    EXPECT_EQ(repo_on.size(), repo_off.size());
  }
}

TEST(StablePhase, KeepHistoryFalseMatchesFullHistoryAcrossStablePhase) {
  // The deep-sweep mode skips even the O(n) scatter until the end; the
  // final level and every class count must still match the full mode.
  for (const PortGraph& g : stable_phase_graphs()) {
    ViewRepo repo_full;
    ViewRepo repo_last;
    ViewProfile full = compute_profile(g, repo_full, 30);
    ViewProfile last = compute_profile(
        g, repo_last, ProfileOptions{.min_depth = 30, .keep_history = false});
    EXPECT_EQ(last.class_counts, full.class_counts);
    EXPECT_EQ(last.computed_depth(), full.computed_depth());
    ASSERT_EQ(last.ids.size(), 1u);
    EXPECT_EQ(last.last_level(), full.last_level());
    EXPECT_EQ(repo_last.size(), repo_full.size());
  }
}

TEST(StablePhase, StableRoundInternsExactlyCViews) {
  // The debug-counter contract: past stabilization, one round = exactly C
  // fresh records, pinned by repo size deltas while driving the Refiner by
  // hand — with the quotient counter proving the fast path actually ran.
  PortGraph g = portgraph::ring(64);
  ViewRepo repo;
  Refiner refiner(g, repo);
  std::vector<ViewId> level;
  std::vector<ViewId> next;
  refiner.init_level(level);
  int guard = 0;
  while (!refiner.stable()) {
    ASSERT_LT(guard++, 64) << "ring(64) never stabilized";
    refiner.advance(level, next);
    level.swap(next);
  }
  std::size_t classes = refiner.classes();
  EXPECT_GE(classes, 1u);
  std::uint64_t quotient_rounds = refiner.quotient_advances();
  for (int round = 0; round < 16; ++round) {
    std::size_t before = repo.size();
    std::size_t got = refiner.advance(level, next);
    level.swap(next);
    EXPECT_EQ(got, classes);
    EXPECT_EQ(repo.size(), before + classes) << "round " << round;
  }
  EXPECT_EQ(refiner.quotient_advances(), quotient_rounds + 16);

  // advance_quotient without per-node scatter: same contract.
  for (int round = 0; round < 8; ++round) {
    std::size_t before = repo.size();
    EXPECT_EQ(refiner.advance_quotient(), classes);
    EXPECT_EQ(repo.size(), before + classes);
  }
  // The scattered level agrees with the class index.
  refiner.scatter(level);
  for (std::size_t v = 0; v < g.n(); ++v) {
    EXPECT_EQ(level[v], refiner.node_view(static_cast<NodeId>(v)));
    EXPECT_EQ(level[v], refiner.class_view(refiner.class_of()[v]));
  }
}

TEST(StablePhase, ForeignLevelDropsTheQuotientSafely) {
  // Feeding advance() a level the refiner did not produce must not go
  // through the frozen quotient — it re-detects from scratch and still
  // produces the exact per-node result.
  PortGraph g = portgraph::ring(24);
  ViewRepo repo;
  Refiner refiner(g, repo);
  std::vector<ViewId> level;
  std::vector<ViewId> next;
  refiner.init_level(level);
  for (int t = 0; t < 6; ++t) {
    refiner.advance(level, next);
    level.swap(next);
  }
  ASSERT_TRUE(refiner.stable());
  // A fresh depth-0 level: same graph, new sequence. The refiner must not
  // scatter stale class ids over it.
  std::vector<ViewId> fresh(g.n());
  for (std::size_t v = 0; v < g.n(); ++v)
    fresh[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  std::vector<ViewId> out;
  refiner.advance(fresh, out);
  ViewRepo repo_ref;
  std::vector<std::vector<ViewId>> want = naive_levels(g, repo_ref, 1);
  ASSERT_EQ(out.size(), want[1].size());
  for (std::size_t v = 0; v < g.n(); ++v)
    EXPECT_EQ(repo.depth(out[v]), 1) << "node " << v;
}

TEST(StablePhase, ForeignLevelAgreeingAtRepresentativesStillFallsBack) {
  // Adversarial misuse: a level that matches the frozen quotient at every
  // representative node but differs elsewhere. matches_quotient verifies
  // all n entries in every build mode, so this must take the full path
  // and produce exactly the per-node result.
  portgraph::PortGraph ring = portgraph::ring(24);
  ViewRepo repo;
  Refiner refiner(ring, repo);
  std::vector<ViewId> level;
  std::vector<ViewId> next;
  refiner.init_level(level);
  for (int t = 0; t < 6; ++t) {
    refiner.advance(level, next);
    level.swap(next);
  }
  ASSERT_TRUE(refiner.stable());
  int depth = repo.depth(level[0]);

  // Same-depth views of a different shape, interned into the same repo: a
  // path's end node has degree 1, so its view can never equal a ring view.
  portgraph::PortGraph path = portgraph::path(24);
  ViewProfile pp = compute_profile(path, repo, depth);
  // Representatives are each class's first node (class_of is numbered in
  // first-occurrence order); poison the last non-representative.
  std::span<const std::uint32_t> class_of = refiner.class_of();
  std::vector<bool> seen(refiner.classes(), false);
  std::vector<ViewId> mixed = level;  // agrees at every representative...
  std::size_t poisoned = 0;
  for (std::size_t v = 0; v < mixed.size(); ++v) {
    if (!seen[class_of[v]]) {
      seen[class_of[v]] = true;  // v is a representative — leave it alone
      continue;
    }
    poisoned = v;  // keep scanning: take the last non-representative
  }
  ASSERT_GT(poisoned, 0u);
  mixed[poisoned] = pp.view(depth, 0);  // ...but not at node `poisoned`
  ASSERT_NE(mixed, level);

  // The per-node reference over the same repo (interning is idempotent,
  // so computing it first cannot change what advance() produces).
  std::vector<ViewId> want(mixed.size());
  std::vector<ChildRef> kids;
  for (std::size_t v = 0; v < mixed.size(); ++v) {
    const auto& row = ring.neighbors(static_cast<NodeId>(v));
    kids.clear();
    for (const auto& he : row)
      kids.emplace_back(he.rev_port,
                        mixed[static_cast<std::size_t>(he.neighbor)]);
    want[v] = repo.intern(kids);
  }
  std::vector<ViewId> got;
  std::size_t classes = refiner.advance(mixed, got);
  EXPECT_EQ(got, want) << "poisoned node " << poisoned;
  EXPECT_GT(classes, 1u);  // the poisoned node's neighbors split off
}

TEST(StablePhase, PoolInvariantAcrossStablePhase) {
  // Raw ids may differ once the intern stage runs concurrently; the class
  // counts and the canonical rank of every node's view at every level —
  // including all the quotient rounds after stabilization — must be
  // byte-identical across thread counts (DESIGN.md §10).
  PortGraph g = portgraph::random_connected(6000, 9000, 11);
  util::ThreadPool pool(4);
  ViewRepo repo_seq;
  ViewRepo repo_par;
  ViewProfile a =
      compute_profile(g, repo_seq, ProfileOptions{.min_depth = 12});
  ViewProfile b = compute_profile(
      g, repo_par, ProfileOptions{.min_depth = 12, .pool = &pool});
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(repo_seq.size(), repo_par.size());
  ASSERT_EQ(a.ids.size(), b.ids.size());
  for (std::size_t t = 0; t < a.ids.size(); ++t) {
    ASSERT_EQ(a.ids[t].size(), b.ids[t].size());
    for (std::size_t v = 0; v < a.ids[t].size(); ++v) {
      ASSERT_NE(repo_seq.rank(a.ids[t][v]), kUnranked);
      ASSERT_EQ(repo_seq.rank(a.ids[t][v]), repo_par.rank(b.ids[t][v]))
          << "level " << t << " node " << v;
    }
  }
}

TEST(StablePhase, ExtendProfileRidesTheQuotient) {
  for (bool keep_history : {true, false}) {
    PortGraph g = portgraph::ring(40);
    ViewRepo repo;
    ViewRepo repo_ref;
    ViewProfile p = compute_profile(
        g, repo, ProfileOptions{.keep_history = keep_history});
    int target = p.computed_depth() + 25;  // deep into the stable phase
    extend_profile(g, repo, p, target);
    EXPECT_EQ(p.computed_depth(), target);
    std::vector<std::vector<ViewId>> want =
        naive_levels(g, repo_ref, target);
    EXPECT_EQ(p.last_level(), want.back());
    EXPECT_EQ(p.class_counts.size(), want.size());
    EXPECT_EQ(repo.size(), repo_ref.size());
  }
}

TEST(StablePhase, ReserveForChangesNoIds) {
  PortGraph g = portgraph::random_connected(40, 36, 5);
  ViewRepo plain;
  ViewRepo reserved;
  reserved.reserve_for(g.n(), g.m(), 12);
  ViewProfile a = compute_profile(g, plain, 12);
  ViewProfile b = compute_profile(g, reserved, 12);
  ASSERT_EQ(a.ids.size(), b.ids.size());
  for (std::size_t t = 0; t < a.ids.size(); ++t)
    EXPECT_EQ(a.ids[t], b.ids[t]);
  EXPECT_EQ(plain.size(), reserved.size());
}

}  // namespace
}  // namespace anole::views

namespace anole::sim {
namespace {

using portgraph::PortGraph;
using views::ViewId;

/// COM for `target` rounds, recording every view seen (same program as
/// refiner_test.cpp, here driven deep into the stable phase).
class ComRecorder final : public FullInfoProgram {
 public:
  explicit ComRecorder(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override {
    return rounds_seen_ >= target_;
  }
  [[nodiscard]] std::vector<int> output() const override {
    return {rounds_seen_};
  }
  const std::vector<ViewId>& history() const { return history_; }

 protected:
  void on_view(int rounds) override {
    rounds_seen_ = rounds;
    history_.push_back(view());
  }

 private:
  int target_;
  int rounds_seen_ = 0;
  std::vector<ViewId> history_;
};

void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.decision_round, b.decision_round);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.message_count, b.message_count);
  EXPECT_EQ(a.total_message_bits, b.total_message_bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.bits_per_round, b.bits_per_round);
  EXPECT_EQ(a.distinct_views_per_round, b.distinct_views_per_round);
  EXPECT_EQ(a.timed_out, b.timed_out);
}

struct ComRun {
  RunMetrics metrics;
  std::vector<std::vector<ViewId>> histories;
  /// Histories mapped id -> canonical rank: unlike raw ids, deterministic
  /// across pool thread counts (DESIGN.md §10).
  std::vector<std::vector<std::int32_t>> rank_histories;
};

enum class Mode { kEngine, kQuotientOff, kQuotientOn };

ComRun run_with(const PortGraph& g, int target, int max_rounds, bool meter,
                Mode mode, util::ThreadPool* pool = nullptr) {
  views::QuotientSwitch quotient(mode == Mode::kQuotientOn);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<ComRecorder*> raw;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto p = std::make_unique<ComRecorder>(target);
    raw.push_back(p.get());
    programs.push_back(std::move(p));
  }
  ComRun out;
  out.metrics = mode == Mode::kEngine
                    ? Engine(g, repo).run(programs, max_rounds, meter)
                    : run_full_info(g, repo, programs, max_rounds, meter, pool);
  for (ComRecorder* p : raw) out.histories.push_back(p->history());
  for (const auto& h : out.histories) {
    std::vector<std::int32_t> ranks(h.size());
    for (std::size_t i = 0; i < h.size(); ++i) ranks[i] = repo.rank(h[i]);
    out.rank_histories.push_back(std::move(ranks));
  }
  return out;
}

TEST(StablePhaseCom, RunFullInfoByteIdenticalQuotientOnOffAndEngine) {
  // Deep targets: most rounds run through the frozen quotient, and every
  // metric — including every metered bit of every round — plus every
  // node's view history must match the quotient-disabled batched path and
  // the per-node engine exactly.
  std::vector<PortGraph> graphs;
  graphs.push_back(portgraph::ring(32));
  graphs.push_back(portgraph::ring(9));
  graphs.push_back(portgraph::clique(6));
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    graphs.push_back(portgraph::random_connected(18, 14, seed));
  for (const PortGraph& g : graphs) {
    for (bool meter : {false, true}) {
      ComRun engine = run_with(g, 18, 20, meter, Mode::kEngine);
      ComRun off = run_with(g, 18, 20, meter, Mode::kQuotientOff);
      ComRun on = run_with(g, 18, 20, meter, Mode::kQuotientOn);
      expect_metrics_equal(on.metrics, engine.metrics);
      expect_metrics_equal(on.metrics, off.metrics);
      EXPECT_EQ(on.histories, engine.histories);
      EXPECT_EQ(on.histories, off.histories);
    }
  }
}

TEST(StablePhaseCom, StaggeredDecisionsAcrossTheStablePhase) {
  // Nodes decide at different rounds deep in the stable phase: the
  // shrinking undecided list must capture each output exactly once, with
  // metrics byte-identical to the engine.
  PortGraph g = portgraph::ring(20);
  for (bool meter : {false, true}) {
    RunMetrics want;
    RunMetrics got;
    for (bool batched : {false, true}) {
      views::ViewRepo repo;
      std::vector<std::unique_ptr<NodeProgram>> programs;
      for (std::size_t v = 0; v < g.n(); ++v)
        programs.push_back(
            std::make_unique<ComRecorder>(static_cast<int>(v % 13)));
      RunMetrics m = batched
                         ? run_full_info(g, repo, programs, 20, meter)
                         : Engine(g, repo).run(programs, 20, meter);
      (batched ? got : want) = m;
    }
    expect_metrics_equal(got, want);
    EXPECT_EQ(got.rounds, 12);
    for (std::size_t v = 0; v < g.n(); ++v)
      EXPECT_EQ(got.decision_round[v], static_cast<int>(v % 13));
  }
}

TEST(StablePhaseCom, TimeoutInsideStablePhaseMatchesEngine) {
  PortGraph g = portgraph::ring(16);
  ComRun engine = run_with(g, 100, 24, true, Mode::kEngine);
  ComRun on = run_with(g, 100, 24, true, Mode::kQuotientOn);
  EXPECT_TRUE(on.metrics.timed_out);
  expect_metrics_equal(on.metrics, engine.metrics);
  EXPECT_EQ(on.histories, engine.histories);
}

TEST(StablePhaseCom, ThreadCountInvariantAcrossStablePhase) {
  util::ThreadPool pool(4);
  {
    // Deep metered ring: stabilizes immediately, so almost every round is
    // a quotient round (metering stays cheap — one distinct view).
    PortGraph g = portgraph::ring(4096);
    ComRun seq = run_with(g, 64, 66, true, Mode::kQuotientOn, nullptr);
    ComRun par = run_with(g, 64, 66, true, Mode::kQuotientOn, &pool);
    expect_metrics_equal(par.metrics, seq.metrics);
    EXPECT_EQ(par.rank_histories, seq.rank_histories);
  }
  {
    // Non-symmetric graph, unmetered (deep metered random levels price
    // thousands of large DAGs — covered at small scale elsewhere). Raw
    // ids are schedule-dependent under the pool; the rank image of every
    // history is not (DESIGN.md §10).
    PortGraph g = portgraph::random_connected(5000, 7500, 21);
    ComRun seq = run_with(g, 10, 12, false, Mode::kQuotientOn, nullptr);
    ComRun par = run_with(g, 10, 12, false, Mode::kQuotientOn, &pool);
    expect_metrics_equal(par.metrics, seq.metrics);
    for (const auto& h : par.rank_histories)
      for (std::int32_t r : h)
        ASSERT_NE(r, views::kUnranked);  // or the rank check is vacuous
    EXPECT_EQ(par.rank_histories, seq.rank_histories);
  }
}

TEST(StablePhaseCom, DeepRingRunsThroughTheQuotient) {
  // 512 rounds on a 256-ring: the quotient is what makes this cheap. The
  // exact metering identities of the symmetric ring pin the stable-phase
  // meter: one distinct view per round, every node's message priced as
  // size x degree.
  constexpr std::size_t kN = 256;
  constexpr int kRounds = 512;
  PortGraph g = portgraph::ring(kN);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < kN; ++v)
    programs.push_back(std::make_unique<ComRecorder>(kRounds));
  RunMetrics m = run_full_info(g, repo, programs, kRounds + 1, true);
  EXPECT_FALSE(m.timed_out);
  EXPECT_EQ(m.rounds, kRounds);
  EXPECT_EQ(m.message_count, 2 * kN * kRounds);
  ASSERT_EQ(m.distinct_views_per_round.size(),
            static_cast<std::size_t>(kRounds));
  for (std::size_t d : m.distinct_views_per_round) EXPECT_EQ(d, 1u);
  // One record per level: the stable phase interned exactly C = 1 views
  // per round.
  EXPECT_EQ(repo.size(), static_cast<std::size_t>(kRounds) + 1);
}

}  // namespace
}  // namespace anole::sim
