// Larger-scale end-to-end runs: the full oracle + simulation + verification
// pipeline on graphs in the hundreds of nodes, plus repository growth
// sanity (interning keeps memory polynomial). These complement the small
// exhaustive tests with realistic sizes.

#include <gtest/gtest.h>

#include <cmath>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "views/profile.hpp"

namespace anole {
namespace {

TEST(Stress, MinTimeElectionAtFourHundredNodes) {
  portgraph::PortGraph g = portgraph::random_connected(400, 300, 123);
  election::ElectionRun run = election::run_min_time(g);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_EQ(run.metrics.rounds, run.phi);
  double n = 400.0;
  EXPECT_LE(static_cast<double>(run.advice_bits),
            90.0 * n * std::log2(n));
}

TEST(Stress, LargeTimeElectionOnWideNecklace) {
  families::Necklace nk = families::necklace_member(9, 5, 17);
  election::ElectionRun run = election::run_large_time(
      nk.graph, election::LargeTimeVariant::kCTimesPhi, 2);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_LE(run.metrics.rounds, run.diameter + 2 * run.phi);
}

TEST(Stress, GkFamilyScalesToK64) {
  families::RingOfCliques g = families::g_family_member(64, 5);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g.graph, repo);
  ASSERT_TRUE(p.feasible);
  EXPECT_EQ(p.election_index, 1);
  EXPECT_GT(g.graph.n(), 300u);
}

TEST(Stress, RepoStaysPolynomialOnDeepProfiles) {
  portgraph::PortGraph g = portgraph::random_connected(200, 100, 9);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 30);
  // <= n distinct views per level plus slack for truncation interning.
  EXPECT_LE(repo.size(), 31u * 200u + 1000u);
}

TEST(Stress, LongPathHasLinearDiameterAndSmallPhi) {
  portgraph::PortGraph g = portgraph::path(300);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  ASSERT_TRUE(p.feasible);
  EXPECT_EQ(g.diameter(), 299);
  // A path's views differentiate from the ends inward: phi = ceil of half.
  EXPECT_LE(p.election_index, 150);
  EXPECT_GE(p.election_index, 140);
}

TEST(Stress, RemarkBaselineOnLollipop) {
  // Small phi (clique side) + large diameter (tail): the Remark algorithm
  // must run the full D + phi.
  portgraph::PortGraph g = portgraph::lollipop(12, 60);
  election::ElectionRun run = election::run_remark(g);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_EQ(run.metrics.rounds, run.diameter + run.phi);
  EXPECT_GE(run.diameter, 60);
}

}  // namespace
}  // namespace anole
