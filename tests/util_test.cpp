// Unit tests for the util substrate: PRNG determinism, integer math used
// by the Theorem 4.1 advice schemes, table rendering, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace anole {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  util::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  util::SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, BelowRespectsBound) {
  util::SplitMix64 g(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.below(bound), bound);
  }
}

TEST(Prng, BelowCoversRange) {
  util::SplitMix64 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(g.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, RangeInclusive) {
  util::SplitMix64 g(3);
  for (int i = 0; i < 200; ++i) {
    std::int64_t v = g.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Prng, DeriveSeedIndependentStreams) {
  EXPECT_NE(util::derive_seed(1, 0), util::derive_seed(1, 1));
  EXPECT_NE(util::derive_seed(1, 0), util::derive_seed(2, 0));
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(util::floor_log2(1), 0u);
  EXPECT_EQ(util::floor_log2(2), 1u);
  EXPECT_EQ(util::floor_log2(3), 1u);
  EXPECT_EQ(util::floor_log2(4), 2u);
  EXPECT_EQ(util::floor_log2(1023), 9u);
  EXPECT_EQ(util::floor_log2(1024), 10u);
}

TEST(Math, BitLength) {
  EXPECT_EQ(util::bit_length(0), 1u);  // bin(0) = "0"
  EXPECT_EQ(util::bit_length(1), 1u);
  EXPECT_EQ(util::bit_length(2), 2u);
  EXPECT_EQ(util::bit_length(255), 8u);
  EXPECT_EQ(util::bit_length(256), 9u);
}

TEST(Math, LogStarMilestones) {
  EXPECT_EQ(util::log_star(1), 0u);
  EXPECT_EQ(util::log_star(2), 1u);
  EXPECT_EQ(util::log_star(4), 2u);
  EXPECT_EQ(util::log_star(16), 3u);
  EXPECT_EQ(util::log_star(65536), 4u);
}

TEST(Math, TowerOfTwos) {
  EXPECT_EQ(util::tower(0, 2), 1u);
  EXPECT_EQ(util::tower(1, 2), 2u);
  EXPECT_EQ(util::tower(2, 2), 4u);
  EXPECT_EQ(util::tower(3, 2), 16u);
  EXPECT_EQ(util::tower(4, 2), 65536u);
}

TEST(Math, TowerSaturates) {
  EXPECT_EQ(util::tower(5, 2), UINT64_C(1) << 62);
  EXPECT_EQ(util::tower(100, 3), UINT64_C(1) << 62);
}

TEST(Math, TowerDegenerateBase) { EXPECT_EQ(util::tower(10, 1), 1u); }

TEST(Math, IpowBasics) {
  EXPECT_EQ(util::ipow(2, 10), 1024u);
  EXPECT_EQ(util::ipow(3, 0), 1u);
  EXPECT_EQ(util::ipow(10, 19), UINT64_C(1) << 62);  // saturated
}

// The P_i >= phi invariant of Theorem 4.1 depends on this inequality.
TEST(Math, TowerLogStarDominates) {
  for (std::uint64_t phi = 1; phi <= 100000; phi = phi * 3 / 2 + 1) {
    std::uint64_t p4 = util::tower(util::log_star(phi) + 1, 2) - 1;
    EXPECT_GE(p4, phi) << "phi=" << phi;
  }
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(ANOLE_CHECK_MSG(false, "boom " << 42), std::logic_error);
  try {
    ANOLE_CHECK_MSG(1 == 2, "ctx " << 7);
    FAIL();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 7"), std::string::npos);
  }
}

TEST(Table, RendersAlignedRows) {
  util::Table t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream oss;
  t.print(oss, "caption");
  std::string s = oss.str();
  EXPECT_NE(s.find("caption"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsBadWidth) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
}

TEST(Table, NumFormats) {
  EXPECT_EQ(util::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::Table::num(42), "42");
}

TEST(Table, PrintCsvEscapes) {
  util::Table t({"name", "note"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quo\"te", "line\nbreak"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(),
            "name,note\n"
            "plain,\"a,b\"\n"
            "\"quo\"\"te\",\"line\nbreak\"\n");
}

TEST(ThreadPool, RunsAllTasks) {
  std::vector<int> hits(64, 0);
  util::ThreadPool::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i] = static_cast<int>(i) + 1; },
      4);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], static_cast<int>(i) + 1);
}

TEST(ThreadPool, PropagatesException) {
  EXPECT_THROW(util::ThreadPool::parallel_for(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("task failed");
                   },
                   2),
               std::runtime_error);
}

TEST(ThreadPool, LaterIndicesStillRunAfterThrow) {
  std::atomic<int> ran{0};
  EXPECT_THROW(util::ThreadPool::parallel_for(
                   16,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 0) throw std::runtime_error("first fails");
                   },
                   2),
               std::runtime_error);
  // parallel_for only rethrows after wait_idle: every task still executed.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  util::ThreadPool pool(2);
  pool.wait_idle();  // must not block
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, WaitIdleDrainsAllSubmittedTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdleWithoutTerminate) {
  // A throwing task must neither escape its worker thread (std::terminate)
  // nor skip the in-flight decrement (which would hang wait_idle forever).
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the failure did not poison later tasks
  // The error is delivered exactly once and the pool stays usable.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, FirstTaskExceptionWinsAndQueueDrains) {
  util::ThreadPool pool(2);
  for (int i = 0; i < 16; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // error already consumed; must not rethrow or block
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) pool.submit([&done] { done.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8 * (round + 1));
  }
}

// ------------------------------------------- cancellation (DESIGN.md §14)

TEST(Cancel, TokenStartsLive) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.check());
}

TEST(Cancel, CancelExpiresAndCheckThrows) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.check(), util::CancelledError);
  token.cancel();  // idempotent
  EXPECT_TRUE(token.expired());
}

TEST(Cancel, PastDeadlineExpiresWithoutCancel) {
  util::CancelToken token =
      util::CancelToken::after(std::chrono::seconds(0));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.expired());
  EXPECT_FALSE(token.cancelled());  // deadline, not an explicit cancel
  EXPECT_THROW(token.check(), util::CancelledError);
}

TEST(Cancel, FutureDeadlineStaysLive) {
  util::CancelToken token = util::CancelToken::after(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_GT(token.deadline(), util::CancelToken::Clock::now());
  token.cancel();  // cancel expires the token ahead of its deadline
  EXPECT_TRUE(token.expired());
}

TEST(Cancel, CancelledErrorIsARuntimeError) {
  // Callers distinguishing "gave up" from "broke" catch the subtype; a
  // generic catch still sees a runtime_error with a message.
  try {
    throw util::CancelledError();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "operation cancelled");
  }
}

TEST(ThreadPool, ExpiredTokenTasksAreSkippedButAccounted) {
  util::ThreadPool pool(2);
  util::CancelToken dead;
  dead.cancel();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i)
    pool.submit(&dead, [&ran] { ran.fetch_add(1); });
  pool.wait_idle();  // skipped tasks still complete: no hang, no leak
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, LiveAndNullTokenTasksRun) {
  util::ThreadPool pool(2);
  util::CancelToken live;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    pool.submit(&live, [&ran] { ran.fetch_add(1); });
  for (int i = 0; i < 8; ++i)
    pool.submit(nullptr, [&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, WaitIdleStillRethrowsWithTokensInFlight) {
  // Deadline-pressed queries must not mask real errors: a throwing task
  // surfaces through wait_idle even when skipped token tasks surround it.
  util::ThreadPool pool(2);
  util::CancelToken live, dead;
  dead.cancel();
  std::atomic<int> ran{0};
  pool.submit(&live, [] { throw std::runtime_error("token boom"); });
  for (int i = 0; i < 8; ++i)
    pool.submit(&dead, [&ran] { ran.fetch_add(1); });
  for (int i = 0; i < 8; ++i)
    pool.submit(&live, [&ran] { ran.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // live tasks ran, dead ones were skipped
  // The pool survives the mix and keeps working.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, CancelledErrorPropagatesThroughWaitIdle) {
  util::ThreadPool pool(1);
  pool.submit([] { throw util::CancelledError(); });
  EXPECT_THROW(pool.wait_idle(), util::CancelledError);
}

}  // namespace
}  // namespace anole
