// Tests for the view substrate: hash-consed views agree with a brute-force
// materialization of augmented truncated views; election index matches the
// definition (Prop. 2.1); feasibility detection; canonical order axioms;
// truncation; Prop. 2.2's O(D log(n/D)) bound on random graphs.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "coding/codec.hpp"

#include "portgraph/builders.hpp"
#include "util/math.hpp"
#include "views/paths.hpp"
#include "views/profile.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

// Brute-force canonical string of B^t(v): the ground truth the DAG
// representation must reproduce.
std::string brute_view(const PortGraph& g, NodeId v, int t) {
  std::ostringstream oss;
  oss << "(" << g.degree(v);
  if (t > 0) {
    for (Port p = 0; p < g.degree(v); ++p) {
      const auto& he = g.at(v, p);
      oss << "[" << p << "," << he.rev_port << ":"
          << brute_view(g, he.neighbor, t - 1) << "]";
    }
  }
  oss << ")";
  return oss.str();
}

// Checks id equality == brute-force equality at every depth <= max_t.
void check_against_brute_force(const PortGraph& g, int max_t) {
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, max_t);
  for (int t = 0; t <= max_t; ++t) {
    std::map<std::string, ViewId> by_string;
    for (std::size_t v = 0; v < g.n(); ++v) {
      std::string s = brute_view(g, static_cast<NodeId>(v), t);
      ViewId id = profile.view(t, static_cast<NodeId>(v));
      auto [it, inserted] = by_string.emplace(s, id);
      EXPECT_EQ(it->second, id)
          << "depth " << t << ": equal trees got different ids (or vice "
             "versa) at node "
          << v;
    }
    // Distinct strings must give distinct ids.
    std::set<ViewId> ids;
    for (const auto& [s, id] : by_string) ids.insert(id);
    EXPECT_EQ(ids.size(), by_string.size()) << "depth " << t;
  }
}

TEST(ViewRepo, BruteForceAgreementOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    check_against_brute_force(portgraph::random_connected(9, 5, seed), 3);
}

TEST(ViewRepo, BruteForceAgreementOnStructuredGraphs) {
  check_against_brute_force(portgraph::ring(6), 4);
  check_against_brute_force(portgraph::path(7), 4);
  check_against_brute_force(portgraph::grid(3, 3), 3);
  check_against_brute_force(portgraph::clique(5), 2);
}

TEST(ViewRepo, InternIsIdempotent) {
  ViewRepo repo;
  ViewId a = repo.leaf(3);
  ViewId b = repo.leaf(3);
  EXPECT_EQ(a, b);
  std::vector<ChildRef> kids{{0, a}, {1, b}};
  EXPECT_EQ(repo.intern(kids), repo.intern(kids));
}

TEST(ViewRepo, AccessorsReflectStructure) {
  ViewRepo repo;
  ViewId leaf2 = repo.leaf(2);
  ViewId leaf3 = repo.leaf(3);
  std::vector<ChildRef> kids{{1, leaf2}, {0, leaf3}};
  ViewId v = repo.intern(kids);
  EXPECT_EQ(repo.degree(v), 2);
  EXPECT_EQ(repo.depth(v), 1);
  ASSERT_EQ(repo.children(v).size(), 2u);
  EXPECT_EQ(repo.children(v)[0].first, 1);
  EXPECT_EQ(repo.children(v)[1].second, leaf3);
}

TEST(ViewRepo, CompareIsStrictTotalOrder) {
  PortGraph g = portgraph::random_connected(12, 8, 4);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 3);
  const auto& level = profile.ids[3];
  std::vector<ViewId> distinct(level.begin(), level.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (ViewId a : distinct) {
    EXPECT_EQ(repo.compare(a, a), std::strong_ordering::equal);
    for (ViewId b : distinct) {
      if (a == b) continue;
      auto ab = repo.compare(a, b);
      auto ba = repo.compare(b, a);
      EXPECT_NE(ab, std::strong_ordering::equal);
      EXPECT_TRUE((ab == std::strong_ordering::less) ==
                  (ba == std::strong_ordering::greater));
      for (ViewId c : distinct) {  // transitivity
        if (c == a || c == b) continue;
        if (repo.compare(a, b) == std::strong_ordering::less &&
            repo.compare(b, c) == std::strong_ordering::less) {
          EXPECT_EQ(repo.compare(a, c), std::strong_ordering::less);
        }
      }
    }
  }
}

TEST(ViewRepo, TruncateMatchesDirectComputation) {
  PortGraph g = portgraph::random_connected(10, 6, 8);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 4);
  for (int t = 0; t <= 4; ++t)
    for (int x = 0; x <= t; ++x)
      for (std::size_t v = 0; v < g.n(); ++v)
        EXPECT_EQ(repo.truncate(profile.view(t, static_cast<NodeId>(v)), x),
                  profile.view(x, static_cast<NodeId>(v)));
}

TEST(ViewRepo, Depth1EncodingMatchesPropThreeThree) {
  // Node 1 in path(3) has degree 2: neighbors through ports 0,1 both have
  // rev ports and degrees baked into the triples.
  PortGraph g = portgraph::path(3);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 1);
  const coding::BitString& code = repo.encode_depth1(profile.view(1, 1));
  // Decode the outer Concat: one triple per port.
  std::vector<coding::BitString> triples = coding::decode(code);
  ASSERT_EQ(triples.size(), 2u);
  std::vector<coding::BitString> t0 = coding::decode(triples[0]);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(coding::parse_bin(t0[0]), 0u);  // port index j
  EXPECT_EQ(coding::parse_bin(t0[1]), 0u);  // rev port at neighbor 2 (leaf)
  EXPECT_EQ(coding::parse_bin(t0[2]), 1u);  // neighbor degree
}

TEST(ViewRepo, Depth1EncodingsDistinctForDistinctViews) {
  PortGraph g = portgraph::random_connected(14, 9, 2);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 1);
  std::map<std::string, ViewId> codes;
  for (std::size_t v = 0; v < g.n(); ++v) {
    ViewId id = profile.view(1, static_cast<NodeId>(v));
    auto [it, inserted] =
        codes.emplace(repo.encode_depth1(id).to_string(), id);
    EXPECT_EQ(it->second, id) << "same code for different views";
  }
}

// Independent reference for the incremental DAG statistics: a full
// traversal with a std::set seen-set, the way the pre-incremental code
// computed sizes. The memoized fast path must agree exactly.
DagStats naive_stats(const ViewRepo& repo, ViewId root) {
  DagStats s;
  std::set<ViewId> seen{root};
  std::vector<ViewId> stack{root};
  while (!stack.empty()) {
    ViewId cur = stack.back();
    stack.pop_back();
    ++s.records;
    s.max_degree = std::max(s.max_degree, repo.degree(cur));
    for (const auto& [port, child] : repo.children(cur)) {
      ++s.edges;
      s.max_port = std::max(s.max_port, static_cast<int>(port));
      if (seen.insert(child).second) stack.push_back(child);
    }
  }
  return s;
}

std::size_t naive_serialized_bits(const DagStats& s) {
  return 64 +
         s.records * util::bit_length(static_cast<std::uint64_t>(s.max_degree)) +
         s.edges * (util::bit_length(static_cast<std::uint64_t>(s.max_port)) +
                    util::bit_length(s.records));
}

TEST(ViewRepo, StatsMatchNaiveTraversalEverywhere) {
  // Property test: on random and structured graphs, for every view of
  // every node at every depth, the incremental stats (intern-time maxima +
  // memoized counts) equal a from-scratch traversal, and repeated queries
  // are stable.
  std::vector<PortGraph> graphs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    graphs.push_back(portgraph::random_connected(14, 10, seed));
  graphs.push_back(portgraph::grid(4, 4));
  graphs.push_back(portgraph::clique(6));
  graphs.push_back(portgraph::path(7));
  for (const PortGraph& g : graphs) {
    ViewRepo repo;
    const int max_t = 5;
    ViewProfile profile = compute_profile(g, repo, max_t);
    for (int t = 0; t <= max_t; ++t) {
      for (std::size_t v = 0; v < g.n(); ++v) {
        ViewId id = profile.view(t, static_cast<NodeId>(v));
        DagStats expected = naive_stats(repo, id);
        DagStats got = repo.stats(id);
        EXPECT_EQ(got.records, expected.records) << "depth " << t;
        EXPECT_EQ(got.edges, expected.edges) << "depth " << t;
        EXPECT_EQ(got.max_degree, expected.max_degree) << "depth " << t;
        EXPECT_EQ(got.max_port, expected.max_port) << "depth " << t;
        EXPECT_EQ(repo.dag_records(id), expected.records);
        EXPECT_EQ(repo.serialized_size_bits(id),
                  naive_serialized_bits(expected));
        // Second query hits the memo; must not drift.
        EXPECT_EQ(repo.stats(id).records, expected.records);
      }
    }
  }
}

TEST(ViewRepo, StatsSurviveInterleavedInterning) {
  // Stats queried mid-construction stay correct as the repo keeps growing
  // (the memo tables and epoch marker must track the record count).
  PortGraph g = portgraph::random_connected(12, 9, 13);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 2);
  ViewId early = profile.view(2, 0);
  DagStats before = repo.stats(early);
  extend_profile(g, repo, profile, 6);
  ViewId late = profile.view(6, 0);
  EXPECT_EQ(repo.stats(early).records, before.records);
  EXPECT_EQ(repo.stats(early).edges, before.edges);
  DagStats expected = naive_stats(repo, late);
  EXPECT_EQ(repo.stats(late).records, expected.records);
  EXPECT_EQ(repo.stats(late).edges, expected.edges);
}

TEST(ViewRepo, DeepChainsCompareAndTruncateWithoutRecursion) {
  // Two degree-1 chains 120000 deep differing only at the bottom leaf:
  // the recursive compare/truncate of the pre-iterative code would
  // overflow the call stack here. Also exercises the mirrored compare
  // memo (the b-vs-a query is a lookup of the normalized entry).
  constexpr int kDepth = 120000;
  ViewRepo repo;
  ViewId a = repo.leaf(1);
  ViewId b = repo.leaf(2);
  for (int i = 0; i < kDepth; ++i) {
    std::vector<ChildRef> ka{{0, a}};
    std::vector<ChildRef> kb{{0, b}};
    a = repo.intern(ka);
    b = repo.intern(kb);
  }
  ASSERT_EQ(repo.depth(a), kDepth);
  EXPECT_EQ(repo.compare(a, b), std::strong_ordering::less);
  EXPECT_EQ(repo.compare(b, a), std::strong_ordering::greater);
  // Truncating from the top cuts both chains above their differing leaves:
  // hash-consing must collapse the results to the same id.
  ViewId ta = repo.truncate(a, kDepth / 2);
  ViewId tb = repo.truncate(b, kDepth / 2);
  EXPECT_EQ(repo.depth(ta), kDepth / 2);
  EXPECT_EQ(ta, tb);
  // Deep stats traversal is iterative too.
  EXPECT_EQ(repo.dag_records(a), static_cast<std::size_t>(kDepth) + 1);
}

TEST(ViewRepo, DagSizeIsPolynomial) {
  PortGraph g = portgraph::random_connected(30, 40, 3);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 8);
  // A depth-8 view *tree* would have ~deg^8 nodes; the DAG must stay at
  // most n per level + root.
  std::size_t records = repo.dag_records(profile.view(8, 0));
  EXPECT_LE(records, 8u * 30u + 1u);
  EXPECT_GT(repo.serialized_size_bits(profile.view(8, 0)), 0u);
}

TEST(Profile, ElectionIndexMatchesDefinition) {
  // Prop. 2.1: phi = smallest depth at which all B^t are distinct.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    PortGraph g = portgraph::random_connected(10, 4, seed);
    ViewRepo repo;
    ViewProfile profile = compute_profile(g, repo);
    if (!profile.feasible) continue;
    int phi = profile.election_index;
    ASSERT_GE(phi, 1);
    // At depth phi all brute-force trees are distinct...
    std::set<std::string> at_phi;
    for (std::size_t v = 0; v < g.n(); ++v)
      at_phi.insert(brute_view(g, static_cast<NodeId>(v), phi));
    EXPECT_EQ(at_phi.size(), g.n());
    // ...and at depth phi-1 they are not.
    std::set<std::string> at_prev;
    for (std::size_t v = 0; v < g.n(); ++v)
      at_prev.insert(brute_view(g, static_cast<NodeId>(v), phi - 1));
    EXPECT_LT(at_prev.size(), g.n());
  }
}

TEST(Profile, SymmetricGraphsAreInfeasible) {
  // Port-symmetric graphs: the oriented ring and the dimension-labeled
  // hypercube give every node the same view at every depth. (A clique with
  // canonical id-based ports is NOT symmetric — its port labeling breaks
  // the symmetry, which is exactly why the paper's families must perturb
  // ports so carefully.)
  for (auto make : {+[] { return portgraph::ring(6); },
                    +[] { return portgraph::hypercube(3); }}) {
    ViewRepo repo;
    ViewProfile profile = compute_profile(make(), repo);
    EXPECT_FALSE(profile.feasible);
    EXPECT_EQ(profile.election_index, -1);
  }
}

TEST(Profile, CanonicalCliquePortsBreakSymmetry) {
  ViewRepo repo;
  ViewProfile profile = compute_profile(portgraph::clique(4), repo);
  EXPECT_TRUE(profile.feasible);
  EXPECT_EQ(profile.election_index, 1);
}

TEST(Profile, PathIsFeasibleWithKnownIndex) {
  // path(5): 0-1-2-3-4. Degrees (1,2,2,2,1) split ends from middle; the
  // two ends have mirrored but distinct port-labeled neighborhoods only
  // once depth reveals the asymmetry... verify against brute force.
  PortGraph g = portgraph::path(5);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo);
  ASSERT_TRUE(profile.feasible);
  int phi = profile.election_index;
  std::set<std::string> seen;
  for (std::size_t v = 0; v < g.n(); ++v)
    seen.insert(brute_view(g, static_cast<NodeId>(v), phi));
  EXPECT_EQ(seen.size(), g.n());
}

TEST(Profile, ClassCountsMonotone) {
  PortGraph g = portgraph::random_connected(20, 10, 6);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 6);
  for (std::size_t t = 1; t < profile.class_counts.size(); ++t)
    EXPECT_GE(profile.class_counts[t], profile.class_counts[t - 1]);
}

TEST(Profile, ExtendProfileAddsLevels) {
  PortGraph g = portgraph::random_connected(10, 5, 7);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo);
  int before = profile.computed_depth();
  extend_profile(g, repo, profile, before + 3);
  EXPECT_EQ(profile.computed_depth(), before + 3);
  // Extended levels keep per-node consistency with truncation.
  for (std::size_t v = 0; v < g.n(); ++v)
    EXPECT_EQ(repo.truncate(profile.view(before + 3, static_cast<NodeId>(v)),
                            before),
              profile.view(before, static_cast<NodeId>(v)));
}

TEST(Profile, PropTwoTwoBoundOnRandomGraphs) {
  // Prop. 2.2: phi in O(D log(n/D)). Check a generous constant.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PortGraph g = portgraph::random_connected(40, 30, seed);
    ViewRepo repo;
    ViewProfile profile = compute_profile(g, repo);
    if (!profile.feasible) continue;
    double d = g.diameter();
    double bound =
        4.0 * d * std::max(1.0, std::log2(40.0 / d)) + 4.0;
    EXPECT_LE(profile.election_index, bound) << "seed " << seed;
  }
}

TEST(Profile, ArgminViewIsCanonicalMinimum) {
  PortGraph g = portgraph::random_connected(15, 10, 9);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo);
  ASSERT_TRUE(profile.feasible);
  const auto& level = profile.ids[static_cast<std::size_t>(
      profile.election_index)];
  NodeId best = argmin_view(repo, level);
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (static_cast<NodeId>(v) == best) continue;
    EXPECT_NE(repo.compare(level[v],
                           level[static_cast<std::size_t>(best)]),
              std::strong_ordering::less);
  }
}

TEST(Paths, BestPathsFindShortestLexSmallest) {
  // In path(4) from node 0, the unique record at each level is reached by
  // the unique path; check ports.
  PortGraph g = portgraph::path(4);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 3);
  ViewId root = profile.view(3, 0);
  auto paths = best_paths(repo, root, 3);
  // Node 3's depth-0 view sits at level 3.
  ViewId leaf3 = profile.view(0, 3);
  ASSERT_TRUE(paths.contains(leaf3));
  EXPECT_EQ(paths.at(leaf3).level, 3);
  EXPECT_EQ(paths.at(leaf3).ports, (std::vector<int>{0, 1, 0, 1, 0, 0}));
}

TEST(Paths, PathsAreValidWalks) {
  PortGraph g = portgraph::random_connected(12, 10, 11);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g, repo, 4);
  for (std::size_t v = 0; v < g.n(); ++v) {
    ViewId root = profile.view(4, static_cast<NodeId>(v));
    auto paths = best_paths(repo, root, 4);
    for (const auto& [id, dag_path] : paths) {
      auto nodes = g.walk(static_cast<NodeId>(v), dag_path.ports);
      ASSERT_TRUE(nodes.has_value());
      EXPECT_EQ(static_cast<int>(nodes->size()) - 1, dag_path.level);
      // The endpoint's truncated view matches the record.
      EXPECT_EQ(profile.view(4 - dag_path.level, nodes->back()), id);
    }
  }
}

}  // namespace
}  // namespace anole::views
