// anole_bench — the unified experiment CLI.
//
// Every paper table (E1..E10, M1, M2) is a registered scenario; this
// binary replaces the former one-binary-per-table bench drivers. Cells of
// a scenario run in parallel on a thread pool; structured results are
// reassembled in declaration order, so output is byte-identical for any
// --threads value (see src/runner/ and DESIGN.md).
//
// Usage:
//   anole_bench --list
//   anole_bench --scenario <name|all> [--scenario <name> ...]
//               [--threads N] [--format text|json|csv] [--out FILE]
//               [--timing] [--bench-out FILE]
//               [--snapshot-out PREFIX] [--snapshot-in PREFIX]
//
// Exit status: 0 on success, 1 if any cell failed, 2 on usage errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/bench_out.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "runner/sinks.hpp"
#include "util/table.hpp"

using namespace anole;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: anole_bench --list\n"
        "       anole_bench --scenario <name|all> [--scenario <name> ...]\n"
        "                   [--threads N] [--format text|json|csv]\n"
        "                   [--out FILE] [--timing] [--bench-out FILE]\n"
        "                   [--snapshot-out PREFIX] [--snapshot-in PREFIX]\n"
        "\n"
        "  --list       list registered scenarios and exit\n"
        "  --scenario   scenario to run ('all' = every registered one)\n"
        "  --threads    worker threads for the cell grid (default 1;\n"
        "               0 = hardware concurrency)\n"
        "  --format     output format (default text)\n"
        "  --out        write results to FILE instead of stdout\n"
        "  --timing     include wall-clock fields (non-deterministic)\n"
        "  --bench-out  append one JSON-lines perf record per cell row to\n"
        "               FILE (scenario, cell, wall_ms, n, rounds, bits) —\n"
        "               the perf trajectory channel (see DESIGN.md)\n"
        "  --snapshot-out PREFIX  where the w1 scenario writes its\n"
        "               <PREFIX>-<family>.snap blobs (default: a\n"
        "               per-process temp path)\n"
        "  --snapshot-in PREFIX   where the w1 load/warm cells read\n"
        "               snapshots from (default: what --snapshot-out\n"
        "               resolved to, i.e. read back this run's blobs)\n";
  return code;
}

int list_scenarios() {
  const runner::ScenarioRegistry& registry = runner::ScenarioRegistry::global();
  util::Table table({"scenario", "reference", "summary"});
  for (const std::string& name : registry.names())
    table.add_row({name, registry.reference(name), registry.summary(name)});
  table.print(std::cout, "registered scenarios:");
  return 0;
}

/// Preflight for an explicit --snapshot-in PREFIX: the load/warm cells
/// would otherwise only discover an unreadable prefix deep inside a cell,
/// long after the sweep started. Requires the prefix directory to exist
/// and — unless this run also writes the same prefix — at least one
/// `<prefix>*.snap` blob to already be there.
int check_snapshot_in(const std::string& prefix, bool also_written) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(prefix);
  const fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  if (!fs::is_directory(dir, ec)) {
    std::cerr << "--snapshot-in: directory '" << dir.string()
              << "' does not exist\n";
    return 2;
  }
  if (also_written) return 0;  // this run writes the blobs before reading
  const std::string stem = p.filename().string();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= stem.size() + 5 && name.compare(0, stem.size(), stem) == 0 &&
        name.compare(name.size() - 5, 5, ".snap") == 0)
      return 0;
  }
  std::cerr << "--snapshot-in: no snapshot blobs match '" << prefix
            << "*.snap' (run with --snapshot-out first?)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);

  std::vector<std::string> selected;
  std::size_t threads = 1;
  std::string format = "text";
  std::string out_path;
  std::string bench_out_path;
  bool timing = false;
  bool list = false;
  bool snapshot_out_given = false;
  bool snapshot_in_given = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(usage(std::cerr, 2));
      }
      return args[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario") {
      selected.push_back(next());
    } else if (arg == "--threads") {
      const std::string& value = next();
      try {
        std::size_t pos = 0;
        threads = std::stoul(value, &pos);
        if (pos != value.size() || threads > 4096)
          throw std::invalid_argument(value);
      } catch (const std::exception&) {
        std::cerr << "--threads expects a number in [0, 4096], got '" << value
                  << "'\n";
        return 2;
      }
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--bench-out") {
      bench_out_path = next();
    } else if (arg == "--snapshot-out") {
      snapshot_out_given = true;
      runner::scenarios::set_snapshot_out_prefix(next());
    } else if (arg == "--snapshot-in") {
      snapshot_in_given = true;
      runner::scenarios::set_snapshot_in_prefix(next());
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return usage(std::cerr, 2);
    }
  }

  if (list) return list_scenarios();
  if (snapshot_in_given) {
    bool also_written =
        snapshot_out_given && runner::scenarios::snapshot_out_prefix() ==
                                  runner::scenarios::snapshot_in_prefix();
    if (int rc = check_snapshot_in(runner::scenarios::snapshot_in_prefix(),
                                   also_written))
      return rc;
  }
  if (selected.empty()) {
    std::cerr << "no scenario selected\n";
    return usage(std::cerr, 2);
  }

  const runner::ScenarioRegistry& registry = runner::ScenarioRegistry::global();
  std::vector<std::string> names;
  for (const std::string& name : selected) {
    if (name == "all") {
      std::vector<std::string> all = registry.names();
      names.insert(names.end(), all.begin(), all.end());
    } else if (registry.contains(name)) {
      names.push_back(name);
    } else {
      std::cerr << "unknown scenario: " << name
                << " (try anole_bench --list)\n";
      return 2;
    }
  }

  std::unique_ptr<runner::ResultSink> sink;
  try {
    sink = runner::make_sink(format, runner::SinkOptions{timing});
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "cannot open " << out_path << '\n';
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;

  // Opened once, up front: a bad path is a usage error before any scenario
  // runs, and a single stream keeps the records appendable mid-sweep.
  std::ofstream bench_out;
  if (!bench_out_path.empty()) {
    bench_out.open(bench_out_path, std::ios::app);
    if (!bench_out) {
      std::cerr << "cannot open bench-out file: " << bench_out_path << '\n';
      return 2;
    }
  }

  runner::ExperimentRunner exp_runner(runner::RunOptions{threads});
  std::size_t total_failures = 0;
  bool json_array = format == "json" && names.size() > 1;
  // Cell bodies catch their own exceptions (a failed cell is a reported
  // outcome, exit 1); this catch covers everything outside them — scenario
  // construction, sink emission — with a one-line diagnostic instead of a
  // raw terminate.
  try {
    if (json_array) os << "[\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
      runner::ScenarioOutcome outcome =
          exp_runner.run(registry.make(names[i]));
      total_failures += outcome.failures();
      sink->emit(outcome, os);
      if (bench_out.is_open()) runner::write_bench_records(outcome, bench_out);
      if (json_array && i + 1 < names.size()) os << ",";
      if (format == "text" && i + 1 < names.size()) os << '\n';
      std::cerr << names[i] << ": " << outcome.cells.size() << " cells, "
                << outcome.failures() << " failed\n";
    }
    if (json_array) os << "]\n";
  } catch (const std::exception& e) {
    std::cerr << "anole_bench: error: " << e.what() << '\n';
    return 1;
  }

  if (total_failures > 0) {
    std::cerr << total_failures << " cell(s) failed\n";
    return 1;
  }
  return 0;
}
