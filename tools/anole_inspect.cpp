// anole_inspect — command-line network analyzer.
//
// Reads a port-numbered graph (edge-list format, file or stdin) or builds
// a named family, then reports: validity, n/m/degrees, diameter,
// feasibility, election index, and — on request — the full advice/time
// portfolio with a live simulated election.
//
// Usage:
//   anole_inspect <file|-> [--elect]
//   anole_inspect --family <name> [params...] [--elect] [--dump]
//     families: random <n> <extra> <seed> | grid <r> <c> | ring <n> |
//               necklace <k> <phi> <index> | gk <k> <seed> |
//               hairy <s1,s2,...> | lollipop <head> <tail>
//   anole_inspect --snapshot-in FILE
//     reports a ViewRepo snapshot blob (DESIGN.md §13) from its sections
//     alone — records, child refs, per-depth record/rank histograms,
//     memoized stats, sweep anchors. Verifies the body checksum; nothing
//     is recomputed and no repo is built.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "election/harness.hpp"
#include "families/hairy.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "portgraph/io.hpp"
#include "runner/portfolio.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"
#include "views/snapshot.hpp"

using namespace anole;

namespace {

int usage(std::ostream& os = std::cerr, int code = 2) {
  os << "usage: anole_inspect <file|-> [--elect]\n"
         "       anole_inspect --family <name> [params...] [--elect] "
         "[--dump]\n"
         "families: random <n> <extra> <seed> | grid <r> <c> | ring <n> |\n"
         "          necklace <k> <phi> <index> | gk <k> <seed> |\n"
         "          hairy <s1,s2,...> | lollipop <head> <tail>\n"
         "       anole_inspect --snapshot-in FILE\n";
  return code;
}

/// --snapshot-in: everything the blob's sections say, nothing recomputed.
int inspect_snapshot_file(const std::string& path) {
  views::SnapshotInfo info;
  try {
    info = views::inspect_snapshot(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cout << "file bytes       : " << info.file_bytes << '\n'
            << "format version   : " << info.format_version << '\n'
            << "id high-water    : " << info.high_water << '\n'
            << "records          : " << info.records << '\n'
            << "child refs       : " << info.child_refs << '\n'
            << "stats entries    : " << info.stats_entries << '\n'
            << "max depth        : "
            << (info.records_per_depth.empty()
                    ? 0
                    : info.records_per_depth.size() - 1)
            << '\n';
  util::Table depths({"depth", "records", "ranked"});
  for (std::size_t d = 0; d < info.records_per_depth.size(); ++d) {
    std::uint64_t ranked =
        d < info.ranked_per_depth.size() ? info.ranked_per_depth[d] : 0;
    depths.add_row({util::Table::num(d),
                    util::Table::num(info.records_per_depth[d]),
                    util::Table::num(ranked)});
  }
  depths.print(std::cout, "\nrecords per depth:");
  if (!info.anchors.empty()) {
    util::Table anchors({"fingerprint", "n", "depth", "classes", "stable"});
    for (const views::SnapshotInfo::AnchorInfo& a : info.anchors) {
      std::ostringstream fp;
      fp << std::hex << a.fingerprint;
      anchors.add_row({fp.str(), util::Table::num(a.n),
                       util::Table::num(a.depth), util::Table::num(a.classes),
                       a.stabilized ? "yes" : "no"});
    }
    anchors.print(std::cout, "\nsweep anchors:");
  }
  return 0;
}

/// Strict non-negative integer parse: the whole token must be digits.
/// Family parameters come straight from the command line, so a typo like
/// "1O24" or "-3" gets a one-line diagnostic instead of a partial parse or
/// an uncaught std::invalid_argument.
std::uint64_t parse_number(const std::string& token, const char* what) {
  try {
    std::size_t pos = 0;
    unsigned long long value = std::stoull(token, &pos);
    if (pos != token.size() || token.front() == '-')
      throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(what) + " expects a non-negative " +
                             "integer, got '" + token + "'");
  }
}

std::vector<int> parse_csv(const std::string& s) {
  std::vector<int> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    out.push_back(static_cast<int>(parse_number(item, "hairy segment")));
  return out;
}

portgraph::PortGraph build_family(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("--family expects a family name");
  const std::string& name = args.at(0);
  auto arg = [&](std::size_t i) {
    if (i >= args.size())
      throw std::runtime_error("family '" + name + "' needs " +
                               std::to_string(i) + " parameter(s)");
    return parse_number(args[i], ("family '" + name + "' parameter").c_str());
  };
  if (name == "random")
    return portgraph::random_connected(arg(1), arg(2), arg(3));
  if (name == "grid") return portgraph::grid(arg(1), arg(2));
  if (name == "ring") return portgraph::ring(arg(1));
  if (name == "lollipop") return portgraph::lollipop(arg(1), arg(2));
  if (name == "necklace")
    return families::necklace_member(static_cast<int>(arg(1)),
                                     static_cast<int>(arg(2)), arg(3))
        .graph;
  if (name == "gk")
    return families::g_family_member(static_cast<int>(arg(1)), arg(2)).graph;
  if (name == "hairy") {
    if (args.size() < 2)
      throw std::runtime_error("family 'hairy' needs a segment list s1,s2,...");
    return families::hairy_ring(parse_csv(args[1])).graph;
  }
  throw std::runtime_error("unknown family: " + name);
}

/// The main report: refinement profile, graph stats, optional election
/// portfolio. Throws on internal-invariant violations; main() catches.
int analyze(const portgraph::PortGraph& g, bool elect) {
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  int min_deg = g.degree(0), max_deg = g.degree(0);
  for (std::size_t v = 1; v < g.n(); ++v) {
    min_deg = std::min(min_deg, g.degree(static_cast<portgraph::NodeId>(v)));
    max_deg = std::max(max_deg, g.degree(static_cast<portgraph::NodeId>(v)));
  }
  std::cout << "nodes            : " << g.n() << '\n'
            << "edges            : " << g.m() << '\n'
            << "degree range     : [" << min_deg << ", " << max_deg << "]\n"
            << "diameter         : " << g.diameter() << '\n'
            << "feasible         : " << (profile.feasible ? "yes" : "no")
            << '\n';
  if (!profile.feasible) {
    std::cout << "election index   : - (views never all distinct; no "
                 "algorithm can elect here)\n";
    return 0;
  }
  std::cout << "election index   : " << profile.election_index << '\n';

  if (elect) {
    util::Table table({"algorithm", "time model", "rounds", "advice bits",
                       "ok"});
    // One context for all eight rows: the repo, profile and diameter are
    // computed once and shared across the whole portfolio.
    election::ElectionContext ctx(g);
    for (const runner::PortfolioAlgorithm& algo :
         runner::election_portfolio(/*c=*/2)) {
      election::ElectionRun run = algo.run(ctx);
      table.add_row({algo.name, algo.model,
                     util::Table::num(run.metrics.rounds),
                     util::Table::num(run.advice_bits),
                     run.ok() ? "yes" : "NO"});
    }
    table.print(std::cout, "\nelection portfolio:");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  bool elect = false, dump = false;
  std::vector<std::string> positional;
  bool family_mode = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--snapshot-in") {
      if (i + 1 >= args.size() || args.size() != 2) return usage();
      return inspect_snapshot_file(args[i + 1]);
    }
    if (args[i] == "--elect")
      elect = true;
    else if (args[i] == "--dump")
      dump = true;
    else if (args[i] == "--family")
      family_mode = true;
    else if (args[i] == "--help" || args[i] == "-h")
      return usage(std::cout, 0);
    else if (args[i].size() >= 2 && args[i][0] == '-' && args[i] != "-") {
      std::cerr << "unknown flag: " << args[i] << '\n';
      return usage();
    } else
      positional.push_back(args[i]);
  }

  portgraph::PortGraph g;
  try {
    if (family_mode) {
      g = build_family(positional);
    } else if (positional.size() == 1 && positional[0] == "-") {
      g = portgraph::from_edge_list(std::cin);
    } else if (positional.size() == 1) {
      std::ifstream in(positional[0]);
      if (!in) {
        std::cerr << "cannot open " << positional[0] << '\n';
        return 1;
      }
      g = portgraph::from_edge_list(in);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  if (g.n() == 0) {
    std::cerr << "error: graph is empty (no nodes)\n";
    return 1;
  }

  if (dump) std::cout << portgraph::to_edge_list(g);

  // The analysis asserts structural invariants (ANOLE_CHECK throws
  // std::logic_error); surface those as a one-line diagnostic instead of
  // an uncaught terminate.
  try {
    return analyze(g, elect);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
