// bench_check — perf regression guard over --bench-out records.
//
// Compares a fresh bench-out file (JSON lines appended by
// `anole_bench --bench-out FILE`) against a committed baseline and fails
// when a tracked cell's wall time regressed beyond the tolerance. CI runs
// it after the release-bench sweeps, enforcing the ranked (V2) and
// stable-phase (V3) cells against the repo-root baselines — see
// src/runner/bench_check.hpp for the exact semantics.
//
// Usage:
//   bench_check --baseline FILE --fresh FILE [--tolerance PCT]
//               [--match SUBSTR ...]
//
// Multiple --baseline / --fresh flags merge their records (later files
// win on key collisions, matching the append-only channel). Exit status:
// 0 no regression, 1 regression(s), 2 usage/IO errors.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/bench_check.hpp"

using namespace anole;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: bench_check --baseline FILE --fresh FILE\n"
        "                   [--tolerance PCT] [--match SUBSTR ...]\n"
        "\n"
        "  --baseline   committed bench-out file(s) to compare against\n"
        "  --fresh      freshly measured bench-out file(s)\n"
        "  --tolerance  allowed relative slowdown in percent (default 30)\n"
        "  --match      only enforce cells whose scenario/cell label\n"
        "               contains SUBSTR (repeatable; default: all)\n";
  return code;
}

bool read_into(const std::string& path, runner::BenchTable& table) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_check: cannot open " << path << '\n';
    return false;
  }
  runner::BenchTable t = runner::read_bench_records(in);
  for (auto& [key, ms] : t) table[key] = ms;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> baseline_paths;
  std::vector<std::string> fresh_paths;
  std::vector<std::string> match;
  double tolerance = 30.0;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(usage(std::cerr, 2));
      }
      return args[++i];
    };
    if (arg == "--baseline") {
      baseline_paths.push_back(next());
    } else if (arg == "--fresh") {
      fresh_paths.push_back(next());
    } else if (arg == "--match") {
      match.push_back(next());
    } else if (arg == "--tolerance") {
      const std::string& value = next();
      try {
        std::size_t pos = 0;
        tolerance = std::stod(value, &pos);
        if (pos != value.size() || tolerance < 0.0)
          throw std::invalid_argument(value);
      } catch (const std::exception&) {
        std::cerr << "--tolerance expects a non-negative percent, got '"
                  << value << "'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return usage(std::cerr, 2);
    }
  }
  if (baseline_paths.empty() || fresh_paths.empty()) {
    std::cerr << "need at least one --baseline and one --fresh file\n";
    return usage(std::cerr, 2);
  }

  runner::BenchTable baseline;
  runner::BenchTable fresh;
  for (const std::string& path : baseline_paths)
    if (!read_into(path, baseline)) return 2;
  for (const std::string& path : fresh_paths)
    if (!read_into(path, fresh)) return 2;
  // A guard that guards nothing must say so, not pass: an empty table
  // means a corrupted/emptied file (records are skipped silently when
  // fields are missing), and zero enforced cells means the --match
  // filters no longer select anything.
  if (baseline.empty() || fresh.empty()) {
    std::cerr << "bench_check: no bench records parsed from the "
              << (baseline.empty() ? "baseline" : "fresh") << " file(s)\n";
    return 2;
  }

  runner::BenchComparison cmp =
      runner::compare_bench(baseline, fresh, tolerance, match);
  runner::print_bench_comparison(cmp, tolerance, std::cout);
  std::size_t enforced = 0;
  for (const auto& cell : cmp.cells)
    if (cell.enforced) ++enforced;
  if (enforced == 0 && cmp.regressions == 0) {
    std::cerr << "bench_check: no enforced cells — the match filters "
                 "selected nothing to check\n";
    return 2;
  }
  return cmp.ok() ? 0 : 1;
}
